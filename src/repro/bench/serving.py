"""Load-testing harness for the proof-serving layer.

Replays one workload through a :class:`~repro.service.server.ProofServer`
several times against a single server instance: pass 1 runs against a
cold cache, later passes replay the identical queries against the warm
cache.  Every served response — cached or freshly proved — is verified
by a real client, so a passing load test is also an end-to-end
soundness check of the serving layer.

With ``updates_per_pass`` the harness becomes update-aware: each pass
interleaves that many owner re-weights (seeded, drawn fresh against
the live graph) between equal-sized query chunks, and every chunk is
verified under the descriptor version it was served at — so the run
also exercises incremental re-authentication, versioned cache
invalidation and the client's freshness floor end to end.

With ``run_http_loadtest`` the same workload instead crosses a real
socket: an in-process :class:`~repro.service.http.ProofHttpServer` is
booted on an ephemeral port and a bytes-only
:class:`~repro.api.client.RemoteClient` drives it, measuring wire-level
QPS and bytes-on-wire against the standalone proof sizes the paper
reports — the framing overhead of the protocol, quantified.

Shared by ``repro-spv loadtest`` and ``benchmarks/test_serving.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.method import SignatureVerifier, VerificationMethod, get_method
from repro.crypto.signer import Signer
from repro.errors import ServiceError
from repro.service.cache import DEFAULT_CAPACITY
from repro.service.metrics import MetricsSnapshot
from repro.service.server import ProofServer
from repro.workload.updates import UPDATE_WEIGHT, generate_update_workload


@dataclass(frozen=True)
class LoadtestPass:
    """One replay of the workload: metrics plus verification outcomes."""

    label: str
    snapshot: MetricsSnapshot
    verified: int
    failures: tuple[str, ...]

    @property
    def all_verified(self) -> bool:
        """Whether the client accepted every served response."""
        return not self.failures


@dataclass(frozen=True)
class LoadtestReport:
    """Cold-versus-warm comparison over all passes."""

    method: str
    num_queries: int
    passes: tuple[LoadtestPass, ...]

    @property
    def cold(self) -> LoadtestPass:
        """The first (cold-cache) pass."""
        return self.passes[0]

    @property
    def warm(self) -> LoadtestPass:
        """The last (fully warm) pass."""
        return self.passes[-1]

    @property
    def speedup(self) -> float:
        """Warm QPS over cold QPS."""
        cold_qps = self.cold.snapshot.qps
        return self.warm.snapshot.qps / cold_qps if cold_qps else 0.0

    @property
    def all_verified(self) -> bool:
        """Whether every pass verified completely."""
        return all(p.all_verified for p in self.passes)

    def table_rows(self) -> "list[list[object]]":
        """Rows for :func:`repro.bench.reporting.format_table`."""
        rows = []
        for p in self.passes:
            s = p.snapshot
            rows.append([
                p.label, s.requests, s.qps, s.p50_ms, s.p95_ms,
                100.0 * s.hit_rate, s.proof_kbytes,
                s.updates, s.update_ms_mean,
                "ok" if p.all_verified else f"{len(p.failures)} FAILED",
            ])
        return rows

    #: Header matching :meth:`table_rows`.
    TABLE_HEADERS = ("pass", "requests", "QPS", "p50 ms", "p95 ms",
                     "hit %", "proof KB", "updates", "upd ms", "verified")


def run_loadtest(
    method: VerificationMethod,
    queries: "list[tuple[int, int]]",
    verify_signature: SignatureVerifier,
    *,
    passes: int = 2,
    cache_size: int = DEFAULT_CAPACITY,
    coalesce: bool = True,
    workers: int = 1,
    updates_per_pass: int = 0,
    update_signer: "Signer | None" = None,
    update_seed: int = 2010,
) -> LoadtestReport:
    """Replay *queries* ``passes`` times through one server.

    ``workers > 1`` serves each pass on a thread pool (which disables
    coalescing — the pool answers queries independently); otherwise
    bursts coalesce through the combined-cover batch path when the
    method supports it.  ``updates_per_pass > 0`` interleaves that many
    owner re-weights through every pass (``update_signer`` required);
    each query chunk is then verified with the descriptor version it
    was served under as the freshness floor, so a stale replay would
    fail the load test.
    """
    if passes < 2:
        raise ServiceError(f"need a cold and a warm pass; got passes={passes}")
    if not queries:
        raise ServiceError("empty load-test workload")
    if updates_per_pass < 0:
        raise ServiceError(f"updates_per_pass must be >= 0, got {updates_per_pass}")
    if updates_per_pass and update_signer is None:
        raise ServiceError("updates_per_pass needs an update_signer to re-sign")
    verifier = get_method(method.name)
    server = ProofServer(method, cache_size=cache_size, max_workers=workers)

    def serve(chunk: "list[tuple[int, int]]"):
        if workers > 1:
            return server.answer_concurrent(chunk)
        return server.answer_many(chunk, coalesce=coalesce)

    results: list[LoadtestPass] = []
    for index in range(passes):
        label = "cold" if index == 0 else f"warm{index}"
        server.reset_metrics()
        failures: list[str] = []
        served_count = 0

        def verify_chunk(chunk, served, min_version) -> None:
            nonlocal served_count
            served_count += len(served)
            for (vs, vt), item in zip(chunk, served):
                if not item.ok:
                    failures.append(f"({vs},{vt}): error {item.error}")
                    continue
                result = verifier.verify(vs, vt, item.response,
                                         verify_signature,
                                         min_version=min_version)
                if not result.ok:
                    failures.append(
                        f"({vs},{vt}): {result.reason} {result.detail}")

        if updates_per_pass:
            updates = list(generate_update_workload(
                method.graph, updates_per_pass,
                seed=update_seed + index, kinds=(UPDATE_WEIGHT,),
            ))
            # updates_per_pass + 1 chunks, updates between them.
            step = -(-len(queries) // (updates_per_pass + 1))
            chunks = [queries[i:i + step]
                      for i in range(0, len(queries), step)]
            for ci, chunk in enumerate(chunks):
                floor = server.descriptor_version
                verify_chunk(chunk, serve(chunk), floor)
                if ci < len(updates):
                    server.apply_updates([updates[ci]], update_signer)
            # Fewer chunks than planned (tiny workloads): apply the rest.
            for update in updates[len(chunks):]:
                server.apply_updates([update], update_signer)
        else:
            verify_chunk(queries, serve(queries), None)

        results.append(LoadtestPass(
            label=label,
            snapshot=server.snapshot(),
            verified=served_count - len(failures),
            failures=tuple(failures),
        ))
    return LoadtestReport(
        method=method.name,
        num_queries=len(queries),
        passes=tuple(results),
    )


# ----------------------------------------------------------------------
# HTTP (wire-level) load testing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HttpLoadtestPass:
    """One workload replay over the wire."""

    label: str
    requests: int
    seconds: float
    wire_bytes: int
    proof_bytes: int
    verified: int
    failures: tuple[str, ...]

    @property
    def qps(self) -> float:
        """Wire-level queries per second (client-observed)."""
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    @property
    def all_verified(self) -> bool:
        """Whether the client accepted every wire response."""
        return not self.failures

    @property
    def overhead_ratio(self) -> float:
        """Bytes-on-wire over standalone proof bytes (>= 1.0)."""
        return self.wire_bytes / self.proof_bytes if self.proof_bytes else 0.0


@dataclass(frozen=True)
class HttpLoadtestReport:
    """Cold-versus-warm wire serving comparison.

    ``server_metrics`` is the service's own ``GET /metrics`` JSON
    snapshot, scraped after the last pass — the server-side view
    (hit rate, cache evictions/occupancy) next to the client-observed
    wire numbers.
    """

    method: str
    num_queries: int
    url: str
    passes: tuple[HttpLoadtestPass, ...]
    server_metrics: "dict | None" = None

    @property
    def cold(self) -> HttpLoadtestPass:
        """The first (cold-cache) pass."""
        return self.passes[0]

    @property
    def warm(self) -> HttpLoadtestPass:
        """The last (fully warm) pass."""
        return self.passes[-1]

    @property
    def speedup(self) -> float:
        """Warm wire QPS over cold wire QPS."""
        return self.warm.qps / self.cold.qps if self.cold.qps else 0.0

    @property
    def all_verified(self) -> bool:
        """Whether every pass verified completely."""
        return all(p.all_verified for p in self.passes)

    @property
    def wire_overhead_ratio(self) -> float:
        """Whole-run bytes-on-wire over standalone proof bytes."""
        wire = sum(p.wire_bytes for p in self.passes)
        proof = sum(p.proof_bytes for p in self.passes)
        return wire / proof if proof else 0.0

    def table_rows(self) -> "list[list[object]]":
        """Rows for :func:`repro.bench.reporting.format_table`."""
        return [
            [p.label, p.requests, p.qps, p.wire_bytes / 1024.0,
             p.proof_bytes / 1024.0, p.overhead_ratio,
             "ok" if p.all_verified else f"{len(p.failures)} FAILED"]
            for p in self.passes
        ]

    #: Header matching :meth:`table_rows`.
    TABLE_HEADERS = ("pass", "requests", "wire QPS", "wire KB",
                     "proof KB", "overhead", "verified")

    def as_dict(self) -> dict:
        """Flat record for JSON results logs."""
        return {
            "method": self.method,
            "num_queries": self.num_queries,
            "cold_qps": self.cold.qps,
            "warm_qps": self.warm.qps,
            "speedup": self.speedup,
            "wire_bytes": sum(p.wire_bytes for p in self.passes),
            "proof_bytes": sum(p.proof_bytes for p in self.passes),
            "wire_overhead_ratio": self.wire_overhead_ratio,
            "all_verified": self.all_verified,
            "server_metrics": self.server_metrics,
        }


def run_http_loadtest(
    method: VerificationMethod,
    queries: "list[tuple[int, int]]",
    verify_signature: SignatureVerifier,
    *,
    passes: int = 2,
    cache_size: int = DEFAULT_CAPACITY,
    updates_per_pass: int = 0,
    update_signer: "Signer | None" = None,
    update_seed: int = 2010,
    keep_alive: bool = True,
    batch_size: int = 0,
    async_clients: int = 0,
    async_frontend: bool = False,
) -> HttpLoadtestReport:
    """Replay *queries* over real HTTP, verifying every wire response.

    Boots a :class:`~repro.service.http.ProofHttpServer` on an
    ephemeral localhost port around the method's
    :class:`~repro.service.server.ProofServer`, then drives the full
    workload through a :class:`~repro.api.client.RemoteClient` —
    handshake, descriptor fetch, per-query frames — so the measured
    path includes framing, HTTP and socket costs.  With
    ``updates_per_pass`` the harness pushes that many owner re-weights
    per pass *over the wire* and raises the client's freshness floor
    from each push's reported version, so a stale replay would fail
    the run exactly as it would fail a real client.

    ``keep_alive=False`` dials a fresh connection per frame — the
    pre-persistent-transport behaviour, kept as the measurement
    baseline the persistent path is gated against.  ``batch_size > 0``
    replays the workload as multiproof BATCH frames of that many
    queries instead of per-query QUERY frames (every recovered response
    still individually verified).

    ``async_clients > 0`` swaps the single driver for an
    :class:`~repro.bench.aioclient.AsyncClientPool` of that many
    persistent event-loop clients (``keep_alive`` is then implied), and
    ``async_frontend=True`` serves through
    :class:`~repro.service.aio.AsyncProofHttpServer` instead of the
    threaded frontend — the two switches compose, so the same workload
    measures any frontend × driver pairing.
    """
    import contextlib

    from repro.api.client import RemoteClient
    from repro.api.transport import HttpTransport
    from repro.bench.aioclient import AsyncClientPool
    from repro.service.aio import AsyncProofHttpServer
    from repro.service.http import ProofHttpServer

    if passes < 2:
        raise ServiceError(f"need a cold and a warm pass; got passes={passes}")
    if not queries:
        raise ServiceError("empty load-test workload")
    if updates_per_pass < 0:
        raise ServiceError(f"updates_per_pass must be >= 0, got {updates_per_pass}")
    if updates_per_pass and update_signer is None:
        raise ServiceError("updates_per_pass needs an update_signer to re-sign")
    if batch_size < 0:
        raise ServiceError(f"batch_size must be >= 0, got {batch_size}")
    if async_clients < 0:
        raise ServiceError(f"async_clients must be >= 0, got {async_clients}")
    if async_clients and not keep_alive:
        raise ServiceError(
            "async clients hold persistent connections; --no-keepalive "
            "only applies to the single-connection driver")

    server = ProofServer(method, cache_size=cache_size)
    dispatcher = server.dispatcher(update_signer=update_signer)
    server_cls = AsyncProofHttpServer if async_frontend else ProofHttpServer
    results: list[HttpLoadtestPass] = []
    with contextlib.ExitStack() as stack:
        http_server = stack.enter_context(server_cls(dispatcher))
        if async_clients:
            # Generous per-request timeout: with hundreds of in-flight
            # requests on an oversubscribed box, honest queueing delay
            # can reach tens of seconds without anything being wrong.
            client = stack.enter_context(AsyncClientPool(
                http_server.url, verify_signature, clients=async_clients,
                timeout=120.0))
        else:
            transport = stack.enter_context(
                HttpTransport(http_server.url, keep_alive=keep_alive))
            client = RemoteClient(transport, verify_signature)
        hello = client.hello()
        if hello.method != method.name:
            raise ServiceError(
                f"handshake says method {hello.method!r}, expected {method.name!r}"
            )

        def run_chunk(chunk) -> "tuple[int, int, list[str]]":
            wire = 0
            proof = 0
            bad: list[str] = []
            if async_clients:
                outcomes = client.run_chunk(chunk, batch_size=batch_size)
            elif batch_size:
                groups = [chunk[i:i + batch_size]
                          for i in range(0, len(chunk), batch_size)]
                outcomes = [r for group in groups
                            for r in client.query_batch(group)]
            else:
                outcomes = [client.query(vs, vt) for vs, vt in chunk]
            for result in outcomes:
                wire += result.wire_bytes
                proof += len(result.response_bytes or b"")
                if not result.ok:
                    bad.append(
                        f"({result.source},{result.target}): "
                        f"{result.verdict.reason} {result.verdict.detail}")
            return wire, proof, bad

        for index in range(passes):
            label = "cold" if index == 0 else f"warm{index}"
            failures: list[str] = []
            wire_bytes = 0
            proof_bytes = 0
            updates = []
            if updates_per_pass:
                updates = list(generate_update_workload(
                    method.graph, updates_per_pass,
                    seed=update_seed + index, kinds=(UPDATE_WEIGHT,),
                ))
            step = (-(-len(queries) // (len(updates) + 1))
                    if updates else len(queries))
            chunks = [queries[i:i + step] for i in range(0, len(queries), step)]
            start = time.perf_counter()
            for ci, chunk in enumerate(chunks):
                wire, proof, bad = run_chunk(chunk)
                wire_bytes += wire
                proof_bytes += proof
                failures.extend(bad)
                if ci < len(updates):
                    report = client.push_updates([updates[ci]])
                    client.require_version(report.version)
            for update in updates[len(chunks):]:
                report = client.push_updates([update])
                client.require_version(report.version)
            results.append(HttpLoadtestPass(
                label=label,
                requests=len(queries),
                seconds=time.perf_counter() - start,
                wire_bytes=wire_bytes,
                proof_bytes=proof_bytes,
                verified=len(queries) - len(failures),
                failures=tuple(failures),
            ))
        url = http_server.url
        server_metrics = fetch_http_metrics(url)
    return HttpLoadtestReport(
        method=method.name,
        num_queries=len(queries),
        url=url,
        passes=tuple(results),
        server_metrics=server_metrics,
    )


def fetch_http_metrics(url: str, *, timeout: float = 5.0) -> "dict | None":
    """Scrape ``GET {url}/metrics``; ``None`` when unavailable."""
    import json
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(f"{url.rstrip('/')}/metrics",
                                    timeout=timeout) as reply:
            return json.loads(reply.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError):
        return None


# ----------------------------------------------------------------------
# Multi-process (worker pool) load testing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerLoadtestReport:
    """Concurrent wire replay against an ``SO_REUSEPORT`` worker pool.

    ``passes`` reuse :class:`HttpLoadtestPass` (the wire-side view is
    identical — what changes is how many processes answer).
    ``aggregate_metrics`` is the pool's merged final snapshot as a
    dict, including how the requests actually spread across workers
    (``worker_requests``).
    """

    method: str
    num_queries: int
    workers: int
    client_threads: int
    url: str
    passes: tuple[HttpLoadtestPass, ...]
    aggregate_metrics: dict
    worker_requests: tuple[int, ...]

    @property
    def cold(self) -> HttpLoadtestPass:
        """The first (cold-cache) pass."""
        return self.passes[0]

    @property
    def warm(self) -> HttpLoadtestPass:
        """The last (fully warm) pass."""
        return self.passes[-1]

    @property
    def all_verified(self) -> bool:
        """Whether every verified sample passed."""
        return all(p.all_verified for p in self.passes)

    def table_rows(self) -> "list[list[object]]":
        """Rows for :func:`repro.bench.reporting.format_table`."""
        return [
            [p.label, p.requests, p.qps, p.wire_bytes / 1024.0,
             "ok" if p.all_verified else f"{len(p.failures)} FAILED"]
            for p in self.passes
        ]

    #: Header matching :meth:`table_rows`.
    TABLE_HEADERS = ("pass", "requests", "wire QPS", "wire KB", "verified")


def run_worker_loadtest(
    artifact_path: str,
    queries: "list[tuple[int, int]]",
    *,
    workers: int,
    passes: int = 2,
    client_threads: int = 4,
    cache_size: int = DEFAULT_CAPACITY,
    verify_signature: "SignatureVerifier | None" = None,
) -> WorkerLoadtestReport:
    """Replay *queries* concurrently against a pre-forked worker pool.

    Client threads split the workload and fire raw query frames over
    their own HTTP connections — decode on the client side is kept to
    the frame envelope so the measured ceiling is the *server's* proof
    throughput, not the load generator's Python.  One response per pass
    is fully verified through :class:`~repro.api.client.RemoteClient`
    when *verify_signature* is given, preserving the harness invariant
    that a passing load test is also an end-to-end soundness check.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.api.client import RemoteClient
    from repro.api.envelope import MSG_QUERY_OK, QueryRequest, decode_frame
    from repro.api.transport import HttpTransport
    from repro.service.workers import WorkerPool

    if passes < 2:
        raise ServiceError(f"need a cold and a warm pass; got passes={passes}")
    if not queries:
        raise ServiceError("empty load-test workload")
    if client_threads < 1:
        raise ServiceError(f"client_threads must be >= 1, got {client_threads}")

    from repro.store.pack import ArtifactReader

    header = ArtifactReader(artifact_path, verify=False)
    method_name = header.method
    header.close()

    frames = [QueryRequest(vs, vt).to_frame() for vs, vt in queries]
    chunks = [frames[i::client_threads] for i in range(client_threads)]

    def drive(chunk: "list[bytes]", transport: HttpTransport) -> tuple[int, int]:
        wire = 0
        bad = 0
        for frame in chunk:
            reply = transport.roundtrip(frame)
            wire += len(reply)
            if decode_frame(reply).msg_type != MSG_QUERY_OK:
                bad += 1
        return wire, bad

    results: list[HttpLoadtestPass] = []
    with WorkerPool(artifact_path, workers=workers,
                    cache_size=cache_size) as pool:
        url = pool.url
        # One persistent connection per driver thread, held across every
        # pass — the pooled persistent-connection client.  (Each chunk is
        # driven by exactly one thread, so plain HttpTransports pinned to
        # their chunk are equivalent to PooledHttpTransport here, with a
        # deterministic thread-to-connection mapping.)
        transports = [HttpTransport(url) for _ in range(client_threads)]
        try:
            with ThreadPoolExecutor(max_workers=client_threads) as executor:
                for index in range(passes):
                    label = "cold" if index == 0 else f"warm{index}"
                    failures: list[str] = []
                    start = time.perf_counter()
                    outcomes = list(executor.map(drive, chunks, transports))
                    seconds = time.perf_counter() - start
                    wire_bytes = sum(wire for wire, _ in outcomes)
                    errors = sum(bad for _, bad in outcomes)
                    if errors:
                        failures.append(f"{errors} wire-level error replies")
                    if verify_signature is not None:
                        vs, vt = queries[0]
                        with HttpTransport(url) as sample_transport:
                            sample = RemoteClient(
                                sample_transport, verify_signature,
                            ).query(vs, vt)
                        if not sample.ok:
                            failures.append(
                                f"sample ({vs},{vt}): {sample.verdict.reason} "
                                f"{sample.verdict.detail}")
                    results.append(HttpLoadtestPass(
                        label=label,
                        requests=len(queries),
                        seconds=seconds,
                        wire_bytes=wire_bytes,
                        proof_bytes=wire_bytes,  # raw drive: framing included
                        verified=len(queries) - errors,
                        failures=tuple(failures),
                    ))
        finally:
            for transport in transports:
                transport.close()
    aggregate = pool.aggregate
    return WorkerLoadtestReport(
        method=method_name,
        num_queries=len(queries),
        workers=workers,
        client_threads=client_threads,
        url=url,
        passes=tuple(results),
        aggregate_metrics=aggregate.as_dict() if aggregate else {},
        worker_requests=tuple(s.requests for s in pool.worker_snapshots),
    )


# ----------------------------------------------------------------------
# Sharded (router) load testing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RouterLoadtestReport:
    """Wire replay against a shard router fronting per-shard workers.

    The pass layout mirrors :class:`WorkerLoadtestReport`; what changes
    is the serving topology: each shard is its own worker *process*
    over its own ``.rspv`` artifact, and the measured endpoint is the
    router that plans, fans out and stitches.  ``cross_shard`` counts
    workload pairs the router answered with a stitched composite.
    ``router_metrics`` is the router's ``GET /metrics`` JSON — per-shard
    windows and the fleet merge included.
    """

    method: str
    num_queries: int
    num_shards: int
    client_threads: int
    url: str
    passes: tuple[HttpLoadtestPass, ...]
    cross_shard: int
    router_metrics: "dict | None" = None

    @property
    def cold(self) -> HttpLoadtestPass:
        """The first (cold-cache) pass."""
        return self.passes[0]

    @property
    def warm(self) -> HttpLoadtestPass:
        """The last (fully warm) pass."""
        return self.passes[-1]

    @property
    def all_verified(self) -> bool:
        """Whether every verified sample passed."""
        return all(p.all_verified for p in self.passes)

    def table_rows(self) -> "list[list[object]]":
        """Rows for :func:`repro.bench.reporting.format_table`."""
        return [
            [p.label, p.requests, p.qps, p.wire_bytes / 1024.0,
             "ok" if p.all_verified else f"{len(p.failures)} FAILED"]
            for p in self.passes
        ]

    #: Header matching :meth:`table_rows`.
    TABLE_HEADERS = ("pass", "requests", "wire QPS", "wire KB", "verified")


def run_router_loadtest(
    graph,
    signer,
    queries: "list[tuple[int, int]]",
    *,
    num_shards: int,
    passes: int = 2,
    client_threads: int = 4,
    cache_size: int = DEFAULT_CAPACITY,
    verify_signature: "SignatureVerifier | None" = None,
    method: str = "DIJ",
    strategy: str = "hilbert",
) -> RouterLoadtestReport:
    """Stand up a k-shard serving fleet and replay *queries* through it.

    Owner-side, the harness partitions *graph* into ``num_shards``
    shards and packs each as its own artifact (plus the signed
    manifest); serving-side, every shard gets its own single-process
    :class:`~repro.service.workers.WorkerPool` and a
    :class:`~repro.service.router.ShardRouter` fronts them over pooled
    HTTP transports behind a real
    :class:`~repro.service.http.ProofHttpServer`.  Client threads then
    fire raw query frames exactly as :func:`run_worker_loadtest` does,
    so k=1 and k=2 numbers are comparable router-to-router (k=1 pays
    the same proxy hop).  When *verify_signature* is given, one
    response per pass — a cross-shard pair when the workload has one —
    is verified end to end through
    :class:`~repro.api.client.RemoteClient`, stitched composite
    included.
    """
    import contextlib
    import os
    import tempfile
    from concurrent.futures import ThreadPoolExecutor

    from repro.api.client import RemoteClient
    from repro.api.envelope import MSG_QUERY_OK, QueryRequest, decode_frame
    from repro.api.transport import HttpTransport, PooledHttpTransport
    from repro.service.http import ProofHttpServer
    from repro.service.router import ShardRouter
    from repro.service.workers import WorkerPool
    from repro.shard import build_shards, save_manifest
    from repro.store.artifact import save_method

    if passes < 2:
        raise ServiceError(f"need a cold and a warm pass; got passes={passes}")
    if not queries:
        raise ServiceError("empty load-test workload")
    if client_threads < 1:
        raise ServiceError(f"client_threads must be >= 1, got {client_threads}")

    build = build_shards(graph, signer, num_shards=num_shards,
                         method=method, strategy=strategy)
    plan = build.plan
    cross_shard = sum(
        1 for vs, vt in queries if plan.shard_of(vs) != plan.shard_of(vt))

    frames = [QueryRequest(vs, vt).to_frame() for vs, vt in queries]
    chunks = [frames[i::client_threads] for i in range(client_threads)]
    sample_pair = next(
        ((vs, vt) for vs, vt in queries
         if plan.shard_of(vs) != plan.shard_of(vt)),
        queries[0],
    )

    def drive(chunk: "list[bytes]", transport: HttpTransport) -> tuple[int, int]:
        wire = 0
        bad = 0
        for frame in chunk:
            reply = transport.roundtrip(frame)
            wire += len(reply)
            if decode_frame(reply).msg_type != MSG_QUERY_OK:
                bad += 1
        return wire, bad

    results: list[HttpLoadtestPass] = []
    with tempfile.TemporaryDirectory(prefix="repro-shards-") as workdir, \
            contextlib.ExitStack() as stack:
        manifest_path = os.path.join(workdir, "fleet.rspm")
        save_manifest(build.manifest, manifest_path)
        pools = []
        for shard_id, built in enumerate(build.methods):
            artifact = os.path.join(workdir, f"shard{shard_id}.rspv")
            save_method(built, artifact)
            pools.append(stack.enter_context(
                WorkerPool(artifact, workers=1, cache_size=cache_size)))
        shard_transports = [
            stack.enter_context(PooledHttpTransport(pool.url))
            for pool in pools
        ]
        router = stack.enter_context(
            ShardRouter(build.manifest, shard_transports, graph))
        http_server = stack.enter_context(ProofHttpServer(router))
        url = http_server.url
        transports = [stack.enter_context(HttpTransport(url))
                      for _ in range(client_threads)]
        with ThreadPoolExecutor(max_workers=client_threads) as executor:
            for index in range(passes):
                label = "cold" if index == 0 else f"warm{index}"
                failures: list[str] = []
                start = time.perf_counter()
                outcomes = list(executor.map(drive, chunks, transports))
                seconds = time.perf_counter() - start
                wire_bytes = sum(wire for wire, _ in outcomes)
                errors = sum(bad for _, bad in outcomes)
                if errors:
                    failures.append(f"{errors} wire-level error replies")
                if verify_signature is not None:
                    vs, vt = sample_pair
                    with HttpTransport(url) as sample_transport:
                        sample = RemoteClient(
                            sample_transport, verify_signature,
                        ).query(vs, vt)
                    if not sample.ok:
                        failures.append(
                            f"sample ({vs},{vt}): {sample.verdict.reason} "
                            f"{sample.verdict.detail}")
                results.append(HttpLoadtestPass(
                    label=label,
                    requests=len(queries),
                    seconds=seconds,
                    wire_bytes=wire_bytes,
                    proof_bytes=wire_bytes,  # raw drive: framing included
                    verified=len(queries) - errors,
                    failures=tuple(failures),
                ))
        router_metrics = fetch_http_metrics(url)
    return RouterLoadtestReport(
        method=method,
        num_queries=len(queries),
        num_shards=num_shards,
        client_threads=client_threads,
        url=url,
        passes=tuple(results),
        cross_shard=cross_shard,
        router_metrics=router_metrics,
    )
