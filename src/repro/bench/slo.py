"""SLO soak harness: scenario traffic against a live serving stack.

This is where the :mod:`repro.workload.traffic` simulator meets the
real servers.  :func:`run_slo_soak` replays a scenario's phases —
warmup → steady → burst → update-storm — through a pool of client
*processes* (or threads, for fast tests) against either an in-process
:class:`~repro.service.http.ProofHttpServer` or a pre-forked
:class:`~repro.service.workers.WorkerPool`, and reports per phase:

* client-observed latency percentiles (p50/p95/p99) from the *merged
  raw samples* of every client — true fleet percentiles, not the
  weighted approximation the server-side merge uses;
* throughput, with **saturation QPS** taken from closed-loop phases
  (clients firing back-to-back measure the service ceiling; open-loop
  phases measure behaviour *at* an offered rate);
* bytes per query (wire and proof payload) and the client-observed
  cache hit rate (the ``cached`` flag on each reply);
* the server's own per-phase metrics window (via
  :meth:`~repro.service.metrics.ServerMetrics.begin_phase`) and the
  ``GET /metrics`` scrape, including per-worker request balance when a
  pool serves.

The harness keeps the loadtest invariant: **every well-formed response
is verified end to end** by a :class:`~repro.api.client.RemoteClient`
holding nothing but the owner's public key — including across
mid-soak update pushes, after which a final query must verify under
the pushed version as the freshness floor.  Garbage events assert the
error taxonomy: each adversarial frame must draw its expected typed
outcome, and any untyped exception anywhere fails the soak.

:class:`SloPolicy` + :func:`check_slo` turn a report into a gate; the
policy file checked in under ``benchmarks/`` is what CI enforces.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass

from repro.core.method import SignatureVerifier, VerificationMethod
from repro.crypto.signer import Signer, load_public_key
from repro.errors import ProtocolError, ServiceError
from repro.service.cache import DEFAULT_CAPACITY
from repro.service.metrics import percentile
from repro.workload.traffic import (
    EVENT_BATCH,
    EVENT_GARBAGE,
    EVENT_QUERY,
    EVENT_UPDATE,
    Scenario,
    TrafficTrace,
    generate_traffic,
)


# ----------------------------------------------------------------------
# Client-side event execution (shared by thread, process, async clients)
# ----------------------------------------------------------------------
def _blank_outcome(event) -> dict:
    """The flat outcome record every event execution fills in.

    A plain dict so process clients can ship it over a multiprocessing
    queue without custom picklers.
    """
    return {"kind": event.kind, "latency": 0.0, "wire": 0, "proof": 0,
            "queries": 0, "verified": 0, "cached": 0, "failures": [],
            "garbage_kind": event.garbage_kind, "garbage_outcome": ""}


def _note_query(out: dict, vs: int, vt: int, result) -> None:
    """Account one verified query result into *out*."""
    out["wire"] = result.wire_bytes
    out["proof"] = len(result.response_bytes or b"")
    out["queries"] = 1
    out["cached"] = int(result.cached)
    if result.ok:
        out["verified"] = 1
    else:
        out["failures"].append(
            f"({vs},{vt}): {result.verdict.reason} {result.verdict.detail}")


def _note_batch(out: dict, results) -> None:
    """Account one verified batch's results into *out*."""
    out["queries"] = len(results)
    for r in results:
        out["wire"] += r.wire_bytes
        out["proof"] += len(r.response_bytes or b"")
        out["cached"] += int(r.cached)
        if r.ok:
            out["verified"] += 1
        else:
            out["failures"].append(
                f"({r.source},{r.target}): {r.verdict.reason} "
                f"{r.verdict.detail}")


def _note_garbage_refusal(out: dict, event, exc: Exception) -> None:
    """Classify an exception raised while carrying a garbage frame.

    A :class:`ProtocolError` (transport rejection, or an error the reply
    decoder surfaced) is a *typed* outcome; anything else is the untyped
    failure the soak exists to catch.
    """
    if isinstance(exc, ProtocolError):
        out["garbage_outcome"] = \
            "typed" if event.expect in ("error", "any") else "unexpected"
        if out["garbage_outcome"] == "unexpected":
            out["failures"].append(
                f"garbage {event.garbage_kind}: protocol-level refusal "
                f"where a reply was expected")
    else:
        out["garbage_outcome"] = "untyped"
        out["failures"].append(
            f"garbage {event.garbage_kind}: untyped "
            f"{type(exc).__name__}: {exc}")


def _interpret_garbage_reply(out: dict, sync_client, event,
                             reply_frame: bytes) -> None:
    """Hold a garbage frame's reply against the event's expectation.

    *sync_client* is a :class:`~repro.api.client.RemoteClient` — async
    drivers pass the one embedded in their
    :class:`~repro.bench.aioclient.AsyncRemoteClient`, so the verdict
    logic is byte-for-byte shared across every client mode.
    """
    from repro.api.envelope import (
        ErrorMessage,
        QueryReply,
        QueryRequest,
        decode_frame,
        decode_message,
    )

    try:
        message = decode_message(decode_frame(reply_frame))
    except Exception as exc:  # noqa: BLE001 — classification is the point
        _note_garbage_refusal(out, event, exc)
        return
    out["wire"] = len(reply_frame)
    if event.expect == "error":
        ok = isinstance(message, ErrorMessage)
        out["garbage_outcome"] = "typed" if ok else "unexpected"
        if not ok:
            out["failures"].append(
                f"garbage {event.garbage_kind}: expected a typed error, "
                f"got {type(message).__name__}")
    elif event.expect == "ok":  # replay of a valid frame: full service
        if isinstance(message, QueryReply):
            (vs, vt), = event.queries
            if message.composite:  # a router answered with a stitch
                verdict = sync_client._composite_verdict(vs, vt,
                                                         message.composite)
            else:
                verdict = sync_client.client.verify_bytes(
                    vs, vt, message.response_bytes)
            out["garbage_outcome"] = "typed" if verdict.ok else "unexpected"
            if not verdict.ok:
                out["failures"].append(
                    f"garbage replay ({vs},{vt}): {verdict.reason} "
                    f"{verdict.detail}")
        else:
            out["garbage_outcome"] = "unexpected"
            out["failures"].append(
                f"garbage replay: expected QueryReply, "
                f"got {type(message).__name__}")
    else:  # "any": a typed error or a well-formed reply both pass
        out["garbage_outcome"] = "typed"
        if isinstance(message, QueryReply):
            # The flip may have landed in the query ids; decode the
            # mutated frame ourselves to know what was actually asked.
            try:
                mutated = decode_message(decode_frame(event.frame))
            except Exception:  # noqa: BLE001
                mutated = None
            if isinstance(mutated, QueryRequest):
                if message.composite:
                    verdict = sync_client._composite_verdict(
                        mutated.source, mutated.target, message.composite)
                else:
                    verdict = sync_client.client.verify_bytes(
                        mutated.source, mutated.target,
                        message.response_bytes)
                if not verdict.ok:
                    out["garbage_outcome"] = "unexpected"
                    out["failures"].append(
                        f"garbage bitflip: reply failed verification: "
                        f"{verdict.reason} {verdict.detail}")


def _execute_event(client, transport, event) -> dict:
    """Send one traffic event; return its flat outcome record."""
    out = _blank_outcome(event)
    start = time.perf_counter()
    if event.kind == EVENT_QUERY:
        (vs, vt), = event.queries
        result = client.query(vs, vt)
        out["latency"] = time.perf_counter() - start
        _note_query(out, vs, vt, result)
    elif event.kind == EVENT_BATCH:
        results = client.query_many(event.queries)
        out["latency"] = time.perf_counter() - start
        _note_batch(out, results)
    elif event.kind == EVENT_GARBAGE:
        try:
            reply_frame = transport.roundtrip(event.frame)
        except Exception as exc:  # noqa: BLE001 — this is the assertion
            out["latency"] = time.perf_counter() - start
            _note_garbage_refusal(out, event, exc)
            return out
        out["latency"] = time.perf_counter() - start
        _interpret_garbage_reply(out, client, event, reply_frame)
    return out


async def _execute_event_async(client, event) -> dict:
    """The event-loop twin of :func:`_execute_event`.

    *client* is an :class:`~repro.bench.aioclient.AsyncRemoteClient`;
    only the roundtrips are awaited — every accounting and verdict path
    is the shared sync helper the other client modes use.
    """
    out = _blank_outcome(event)
    start = time.perf_counter()
    if event.kind == EVENT_QUERY:
        (vs, vt), = event.queries
        result = await client.query(vs, vt)
        out["latency"] = time.perf_counter() - start
        _note_query(out, vs, vt, result)
    elif event.kind == EVENT_BATCH:
        results = await client.query_many(event.queries)
        out["latency"] = time.perf_counter() - start
        _note_batch(out, results)
    elif event.kind == EVENT_GARBAGE:
        try:
            reply_frame = await client.transport.roundtrip(event.frame)
        except Exception as exc:  # noqa: BLE001 — this is the assertion
            out["latency"] = time.perf_counter() - start
            _note_garbage_refusal(out, event, exc)
            return out
        out["latency"] = time.perf_counter() - start
        _interpret_garbage_reply(out, client.client, event, reply_frame)
    return out


def _run_events(client, transport, events, *, open_loop: bool,
                time_scale: float) -> "list[dict]":
    """Execute *events* in order, pacing by arrival time when open-loop.

    Open loop sleeps only when *ahead* of schedule — a client that falls
    behind keeps firing back-to-back, which is exactly how offered-rate
    pressure shows up as latency instead of being silently absorbed.
    """
    outcomes = []
    start = time.perf_counter()
    for event in events:
        if open_loop:
            delay = start + event.at * time_scale - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
        outcomes.append(_execute_event(client, transport, event))
    return outcomes


def _run_events_async(url: str, shards, verify_signature, *,
                      open_loop: bool, time_scale: float) -> "list[dict]":
    """Run every shard as a coroutine client on one private event loop.

    Each shard gets its own persistent
    :class:`~repro.api.transport.AsyncTransport` (one connection, one
    in-flight request — a simulated user), and all shards run
    concurrently on a single loop in the calling thread.  Pacing
    matches :func:`_run_events`: open loop sleeps only when ahead of
    schedule.
    """
    from repro.api.transport import AsyncTransport
    from repro.bench.aioclient import AsyncRemoteClient

    async def run_shard(shard) -> "list[dict]":
        transport = AsyncTransport(url)
        client = AsyncRemoteClient(transport, verify_signature)
        outcomes = []
        start = time.perf_counter()
        try:
            for event in shard:
                if open_loop:
                    delay = start + event.at * time_scale - time.perf_counter()
                    if delay > 0:
                        await asyncio.sleep(delay)
                outcomes.append(await _execute_event_async(client, event))
        finally:
            await transport.close()
        return outcomes

    async def run_all() -> "list[dict]":
        shard_outcomes = await asyncio.gather(
            *(run_shard(shard) for shard in shards if shard))
        return [o for outcomes in shard_outcomes for o in outcomes]

    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(run_all())
    finally:
        loop.close()


def _client_main(index: int, url: str, key_path: str, events,
                 open_loop: bool, time_scale: float, queue) -> None:
    """Entry point of one spawned client process."""
    from repro.api.client import RemoteClient
    from repro.api.transport import HttpTransport

    try:
        verify = load_public_key(key_path).verify
        with HttpTransport(url) as transport:
            client = RemoteClient(transport, verify)
            outcomes = _run_events(client, transport, events,
                                   open_loop=open_loop, time_scale=time_scale)
        queue.put((index, outcomes, None))
    except Exception as exc:  # noqa: BLE001 — report, don't hang the join
        queue.put((index, [], f"{type(exc).__name__}: {exc}"))


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PhaseReport:
    """One soak phase as the clients observed it."""

    name: str
    mode: str  # "open" or "closed"
    requests: int          # frames sent (queries + batches + garbage)
    queries: int           # individual queries answered
    seconds: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    wire_bytes: int
    proof_bytes: int
    verified: int
    cache_hits: int        # replies flagged ``cached`` by the server
    failures: tuple[str, ...]
    garbage_sent: int = 0
    garbage_unexpected: int = 0
    garbage_untyped: int = 0
    updates_pushed: int = 0
    server_window: "dict | None" = None

    @property
    def qps(self) -> float:
        """Queries per second over the phase wall time."""
        return self.queries / self.seconds if self.seconds > 0 else 0.0

    @property
    def bytes_per_query(self) -> float:
        """Mean wire bytes per answered query."""
        return self.wire_bytes / self.queries if self.queries else 0.0

    @property
    def hit_rate(self) -> float:
        """Client-observed served-from-cache fraction."""
        return self.cache_hits / self.queries if self.queries else 0.0

    @property
    def all_verified(self) -> bool:
        """Whether every response in this phase verified."""
        return not self.failures

    def as_dict(self) -> dict:
        """Flat record for JSON results logs."""
        return {
            "name": self.name, "mode": self.mode,
            "requests": self.requests, "queries": self.queries,
            "seconds": self.seconds, "qps": self.qps,
            "p50_ms": self.p50_ms, "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "wire_bytes": self.wire_bytes, "proof_bytes": self.proof_bytes,
            "bytes_per_query": self.bytes_per_query,
            "hit_rate": self.hit_rate,
            "verified": self.verified, "failures": len(self.failures),
            "garbage_sent": self.garbage_sent,
            "garbage_unexpected": self.garbage_unexpected,
            "garbage_untyped": self.garbage_untyped,
            "updates_pushed": self.updates_pushed,
            "server_window": self.server_window,
        }


@dataclass(frozen=True)
class SloReport:
    """A full soak run: per-phase views plus the fleet rollup."""

    scenario: str
    method: str
    seed: int
    trace_digest: str
    clients: int
    client_mode: str
    url: str
    phases: tuple[PhaseReport, ...]
    server_metrics: "dict | None" = None
    worker_requests: tuple[int, ...] = ()
    final_version: int = 0
    freshness_failures: tuple[str, ...] = ()

    @property
    def saturation_qps(self) -> float:
        """Best closed-loop phase QPS (0.0 when no phase is closed)."""
        closed = [p.qps for p in self.phases if p.mode == "closed"]
        return max(closed) if closed else 0.0

    @property
    def verification_failures(self) -> int:
        """Responses that failed end-to-end verification, run-wide."""
        return (sum(len(p.failures) for p in self.phases)
                + len(self.freshness_failures))

    @property
    def untyped_garbage(self) -> int:
        """Garbage frames whose handling raised an untyped exception."""
        return sum(p.garbage_untyped for p in self.phases)

    @property
    def all_verified(self) -> bool:
        """Whether every response (and the freshness floor) verified."""
        return self.verification_failures == 0

    @property
    def total_queries(self) -> int:
        """Individual queries answered across all phases."""
        return sum(p.queries for p in self.phases)

    @property
    def updates_pushed(self) -> int:
        """Owner mutations pushed over the wire across all phases."""
        return sum(p.updates_pushed for p in self.phases)

    def table_rows(self) -> "list[list[object]]":
        """Rows for :func:`repro.bench.reporting.format_table`."""
        return [
            [p.name, p.mode, p.queries, p.qps, p.p50_ms, p.p95_ms,
             p.p99_ms, p.bytes_per_query, 100.0 * p.hit_rate,
             p.updates_pushed, p.garbage_sent,
             "ok" if p.all_verified else f"{len(p.failures)} FAILED"]
            for p in self.phases
        ]

    #: Header matching :meth:`table_rows`.
    TABLE_HEADERS = ("phase", "loop", "queries", "QPS", "p50 ms", "p95 ms",
                     "p99 ms", "B/query", "hit %", "updates", "garbage",
                     "verified")

    def as_dict(self) -> dict:
        """Flat record for JSON results logs and baseline gating."""
        return {
            "scenario": self.scenario,
            "method": self.method,
            "seed": self.seed,
            "trace_digest": self.trace_digest,
            "clients": self.clients,
            "client_mode": self.client_mode,
            "phases": [p.as_dict() for p in self.phases],
            "saturation_qps": self.saturation_qps,
            "verification_failures": self.verification_failures,
            "untyped_garbage": self.untyped_garbage,
            "all_verified": self.all_verified,
            "total_queries": self.total_queries,
            "updates_pushed": self.updates_pushed,
            "final_version": self.final_version,
            "worker_requests": list(self.worker_requests),
            "server_metrics": self.server_metrics,
        }


# ----------------------------------------------------------------------
# Policy gate
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SloPolicy:
    """Service-level objectives a soak report is held against.

    ``max_p99_ms`` applies to every phase except warmup (cold caches are
    not an SLO violation); ``min_hit_rate`` is satisfied by the *best*
    phase (the steady phase is where locality shows); the two zero-max
    counters are the correctness gates and default to zero tolerance.
    """

    max_p99_ms: float = float("inf")
    min_saturation_qps: float = 0.0
    min_hit_rate: float = 0.0
    max_verification_failures: int = 0
    max_untyped_garbage: int = 0

    def as_dict(self) -> dict:
        """Flat record (inverse of :func:`load_slo_policy`)."""
        return {
            "max_p99_ms": self.max_p99_ms,
            "min_saturation_qps": self.min_saturation_qps,
            "min_hit_rate": self.min_hit_rate,
            "max_verification_failures": self.max_verification_failures,
            "max_untyped_garbage": self.max_untyped_garbage,
        }


def load_slo_policy(path: str) -> SloPolicy:
    """Read an :class:`SloPolicy` from a JSON file (unknown keys ignored)."""
    with open(path, "r", encoding="utf-8") as infile:
        record = json.load(infile)
    if not isinstance(record, dict):
        raise ServiceError(f"SLO policy {path!r} is not a JSON object")
    known = {f for f in SloPolicy.__dataclass_fields__}
    return SloPolicy(**{k: v for k, v in record.items() if k in known})


def check_slo(report: SloReport, policy: SloPolicy) -> "list[str]":
    """Violations of *policy* in *report* (empty list = gate passes)."""
    violations: list[str] = []
    for phase in report.phases:
        if phase.name == "warmup":
            continue
        if phase.p99_ms > policy.max_p99_ms:
            violations.append(
                f"phase {phase.name!r}: p99 {phase.p99_ms:.1f} ms exceeds "
                f"SLO {policy.max_p99_ms:.1f} ms")
    if report.saturation_qps < policy.min_saturation_qps:
        violations.append(
            f"saturation {report.saturation_qps:.1f} QPS below SLO "
            f"{policy.min_saturation_qps:.1f} QPS")
    if policy.min_hit_rate > 0.0:
        best = max((p.hit_rate for p in report.phases), default=0.0)
        if best < policy.min_hit_rate:
            violations.append(
                f"best phase hit rate {best:.2f} below SLO "
                f"{policy.min_hit_rate:.2f}")
    if report.verification_failures > policy.max_verification_failures:
        violations.append(
            f"{report.verification_failures} verification failures "
            f"(SLO allows {policy.max_verification_failures})")
    if report.untyped_garbage > policy.max_untyped_garbage:
        violations.append(
            f"{report.untyped_garbage} untyped exceptions on garbage frames "
            f"(SLO allows {policy.max_untyped_garbage})")
    return violations


# ----------------------------------------------------------------------
# The soak driver
# ----------------------------------------------------------------------
def _drive_phase(phase, events, *, url: str, clients: int, client_mode: str,
                 key_path: "str | None", verify_signature, time_scale: float,
                 update_client, allow_updates: bool) -> PhaseReport:
    """Run one phase's events through the client pool; assemble its report.

    Query/batch/garbage events are sharded round-robin across the
    clients; update events stay with the coordinator, which pushes them
    over the wire at their scheduled times from a side thread (one
    writer, many readers — the owner is a single party in the model).
    """
    client_events = [e for e in events if e.kind != EVENT_UPDATE]
    update_events = [e for e in events if e.kind == EVENT_UPDATE] \
        if allow_updates else []
    shards = [client_events[i::clients] for i in range(clients)]
    open_loop = not phase.closed_loop

    update_failures: list[str] = []
    pushed = [0]

    def push_updates() -> None:
        start = time.perf_counter()
        for event in update_events:
            delay = start + event.at * time_scale - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                reply = update_client.push_updates([event.update])
                update_client.require_version(reply.version)
                pushed[0] += 1
            except Exception as exc:  # noqa: BLE001 — a failed push fails the soak
                update_failures.append(
                    f"update push: {type(exc).__name__}: {exc}")

    pusher = threading.Thread(target=push_updates, daemon=True)
    started = time.perf_counter()
    pusher.start()

    outcomes: list[dict] = []
    crashed: list[str] = []
    if client_mode == "process":
        import multiprocessing as mp

        ctx = mp.get_context("spawn")
        queue = ctx.Queue()
        processes = [
            ctx.Process(target=_client_main,
                        args=(i, url, key_path, shard, open_loop,
                              time_scale, queue),
                        daemon=True)
            for i, shard in enumerate(shards) if shard
        ]
        for process in processes:
            process.start()
        # Crash-tolerant collection: a client that dies without
        # reporting must surface as a failure, not hang the soak.
        import queue as queue_mod

        reported = 0
        grace = 3
        while reported < len(processes):
            try:
                index, client_outcomes, error = queue.get(timeout=1.0)
            except queue_mod.Empty:
                if not any(p.is_alive() for p in processes):
                    grace -= 1  # allow the feeder pipes to drain
                    if grace <= 0:
                        break
                continue
            reported += 1
            outcomes.extend(client_outcomes)
            if error:
                crashed.append(f"client {index}: {error}")
        if reported < len(processes):
            crashed.append(
                f"{len(processes) - reported} client process(es) died "
                f"without reporting")
        for process in processes:
            process.join(timeout=5.0)
    elif client_mode == "async":
        # Every shard is a coroutine on one loop: the only client shape
        # that reaches hundreds-to-thousands of concurrent connections.
        outcomes.extend(_run_events_async(
            url, shards, verify_signature,
            open_loop=open_loop, time_scale=time_scale))
    else:  # threads: same pacing logic, in-process verifier
        from repro.api.client import RemoteClient
        from repro.api.transport import HttpTransport

        def run_shard(shard) -> "list[dict]":
            with HttpTransport(url) as transport:
                client = RemoteClient(transport, verify_signature)
                return _run_events(client, transport, shard,
                                   open_loop=open_loop, time_scale=time_scale)

        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=max(1, len(shards))) as pool:
            for client_outcomes in pool.map(run_shard, shards):
                outcomes.extend(client_outcomes)

    pusher.join()
    seconds = time.perf_counter() - started

    latencies = [o["latency"] for o in outcomes
                 if o["kind"] in (EVENT_QUERY, EVENT_BATCH)]
    failures = [f for o in outcomes for f in o["failures"]]
    failures.extend(update_failures)
    failures.extend(crashed)
    garbage = [o for o in outcomes if o["kind"] == EVENT_GARBAGE]
    return PhaseReport(
        name=phase.name,
        mode="closed" if phase.closed_loop else "open",
        requests=len(outcomes),
        queries=sum(o["queries"] for o in outcomes),
        seconds=seconds,
        p50_ms=percentile(latencies, 0.50) * 1000.0,
        p95_ms=percentile(latencies, 0.95) * 1000.0,
        p99_ms=percentile(latencies, 0.99) * 1000.0,
        wire_bytes=sum(o["wire"] for o in outcomes),
        proof_bytes=sum(o["proof"] for o in outcomes),
        verified=sum(o["verified"] for o in outcomes),
        cache_hits=sum(o["cached"] for o in outcomes),
        failures=tuple(failures),
        garbage_sent=len(garbage),
        garbage_unexpected=sum(
            1 for o in garbage if o["garbage_outcome"] == "unexpected"),
        garbage_untyped=sum(
            1 for o in garbage if o["garbage_outcome"] == "untyped"),
        updates_pushed=pushed[0],
    )


def run_slo_soak(
    method: "VerificationMethod | None",
    scenario: Scenario,
    *,
    key_path: "str | None" = None,
    verify_signature: "SignatureVerifier | None" = None,
    update_signer: "Signer | None" = None,
    clients: int = 2,
    client_mode: str = "process",
    seed: int = 2010,
    time_scale: float = 1.0,
    cache_size: int = DEFAULT_CAPACITY,
    artifact_path: "str | None" = None,
    workers: int = 1,
    url: "str | None" = None,
    graph=None,
    frontend: str = "threaded",
) -> SloReport:
    """Run *scenario* against a live serving stack; report per phase.

    Without *artifact_path* the soak boots an in-process
    :class:`~repro.service.http.ProofHttpServer` over a fresh
    :class:`~repro.service.server.ProofServer` for *method* — update
    events are honoured when *update_signer* is given, and the server's
    per-phase metrics windows land in each report.  With
    *artifact_path* a :class:`~repro.service.workers.WorkerPool` of
    *workers* processes serves instead; update events are dropped
    (replica pushes are ROADMAP item 5's scale-out work) and the
    report gains per-worker request balance.

    With *url* the soak drives an **already-running external endpoint**
    (e.g. a shard router) instead of booting anything: *method* may be
    ``None`` (the served method is learned from the handshake), the
    traffic graph comes from *graph* (or *method*'s), and update events
    are dropped — an external endpoint's update path is not this
    harness's to exercise.  Responses are verified exactly as in the
    other modes, stitched cross-shard composites included.

    ``client_mode="process"`` (the default, and what the CLI uses)
    spawns real client processes that verify with the public key file
    at *key_path*; ``"thread"`` keeps clients in-process using
    *verify_signature* — same pacing, no spawn latency, right for unit
    tests.  ``"async"`` multiplexes every client as a coroutine with
    its own persistent connection on one event loop — the only mode
    that scales to hundreds or thousands of concurrent connections
    (point it at a single-box frontend; composite router replies would
    need an out-of-band manifest).  ``time_scale`` stretches (>1) or
    compresses (<1) every arrival timestamp.

    ``frontend="async"`` serves through the event-loop frontend
    (:class:`~repro.service.aio.AsyncProofHttpServer`) instead of the
    threaded one — inline and worker-pool modes only; an external
    *url*'s frontend is not this harness's to choose.
    """
    from repro.api.client import RemoteClient
    from repro.api.transport import HttpTransport
    from repro.bench.serving import fetch_http_metrics

    if clients < 1:
        raise ServiceError(f"clients must be >= 1, got {clients}")
    if client_mode not in ("process", "thread", "async"):
        raise ServiceError(f"unknown client_mode {client_mode!r}")
    if frontend not in ("threaded", "async"):
        raise ServiceError(
            f"frontend must be 'threaded' or 'async', got {frontend!r}")
    if frontend == "async" and url is not None:
        raise ServiceError(
            "an external endpoint's frontend is its own; frontend "
            "selection only applies when the soak boots the server")
    if client_mode == "process" and key_path is None:
        raise ServiceError("process clients need key_path to verify with")
    if client_mode in ("thread", "async") and verify_signature is None:
        if key_path is None:
            raise ServiceError(
                f"{client_mode} clients need verify_signature or key_path")
        verify_signature = load_public_key(key_path).verify
    if time_scale <= 0:
        raise ServiceError(f"time_scale must be positive, got {time_scale}")

    traffic_graph = graph if graph is not None else (
        method.graph if method is not None else None)
    if traffic_graph is None:
        raise ServiceError(
            "the soak needs a traffic graph: pass method or graph")

    trace = generate_traffic(traffic_graph, scenario, seed=seed)
    coordinator_verify = verify_signature \
        if verify_signature is not None else load_public_key(key_path).verify

    def drive(url: str, server) -> "tuple[list[PhaseReport], list[str], int]":
        with HttpTransport(url) as update_transport:
            update_client = RemoteClient(update_transport, coordinator_verify)
            update_client.hello()
            reports: list[PhaseReport] = []
            for phase, events in trace.phases:
                if server is not None:
                    server.metrics.begin_phase(phase.name)
                reports.append(_drive_phase(
                    phase, events, url=url, clients=clients,
                    client_mode=client_mode, key_path=key_path,
                    verify_signature=verify_signature, time_scale=time_scale,
                    update_client=update_client,
                    allow_updates=(server is not None
                                   and update_signer is not None),
                ))
            if server is not None:
                from dataclasses import replace as _replace

                server.metrics.end_phase()
                windows = {w.phase: w.as_dict()
                           for w in server.metrics.phases}
                reports = [_replace(r, server_window=windows.get(r.name))
                           for r in reports]
            # The freshness gate: after every push, a fresh query must
            # verify with the last pushed version as the floor — the
            # end-to-end stale-replay defence, exercised mid-soak.
            freshness: list[str] = []
            floor = update_client.min_descriptor_version or 0
            pair = next(
                (e.queries[0] for _, events in trace.phases for e in events
                 if e.kind == EVENT_QUERY),
                None,
            )
            if pair is not None:
                vs, vt = pair
                final = update_client.query(vs, vt)
                if not final.ok:
                    freshness.append(
                        f"final query ({vs},{vt}) at floor {floor}: "
                        f"{final.verdict.reason} {final.verdict.detail}")
            return reports, freshness, floor

    if url is not None:
        with HttpTransport(url) as probe:
            served_method = RemoteClient(probe, coordinator_verify).hello().method
        reports, freshness, floor = drive(url, None)
        server_metrics = fetch_http_metrics(url)
        return SloReport(
            scenario=scenario.name,
            method=method.name if method is not None else served_method,
            seed=seed, trace_digest=trace.digest(), clients=clients,
            client_mode=client_mode, url=url, phases=tuple(reports),
            server_metrics=server_metrics,
            final_version=floor, freshness_failures=tuple(freshness),
        )

    if method is None:
        raise ServiceError("without url, the soak needs a built method")

    if artifact_path is not None:
        from repro.service.workers import WorkerPool

        with WorkerPool(artifact_path, workers=workers,
                        cache_size=cache_size, frontend=frontend) as pool:
            reports, freshness, floor = drive(pool.url, None)
            url = pool.url
            server_metrics = fetch_http_metrics(url)
        aggregate = pool.aggregate
        return SloReport(
            scenario=scenario.name, method=method.name, seed=seed,
            trace_digest=trace.digest(), clients=clients,
            client_mode=client_mode, url=url, phases=tuple(reports),
            server_metrics=(aggregate.as_dict() if aggregate
                            else server_metrics),
            worker_requests=tuple(s.requests for s in pool.worker_snapshots),
            final_version=floor, freshness_failures=tuple(freshness),
        )

    from repro.service.aio import AsyncProofHttpServer
    from repro.service.http import ProofHttpServer
    from repro.service.server import ProofServer

    server_cls = AsyncProofHttpServer if frontend == "async" \
        else ProofHttpServer
    server = ProofServer(method, cache_size=cache_size)
    dispatcher = server.dispatcher(update_signer=update_signer)
    with server_cls(dispatcher) as http_server:
        url = http_server.url
        reports, freshness, floor = drive(url, server)
        server_metrics = fetch_http_metrics(url)
    return SloReport(
        scenario=scenario.name, method=method.name, seed=seed,
        trace_digest=trace.digest(), clients=clients,
        client_mode=client_mode, url=url, phases=tuple(reports),
        server_metrics=server_metrics,
        final_version=floor, freshness_failures=tuple(freshness),
    )
