"""Plain-text tables and JSON result logs for the benchmark harness."""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: "str | None" = None) -> str:
    """Render an aligned monospace table (numbers right-aligned)."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) if _numeric(cell) else
                               cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    return str(value)


def _numeric(cell: str) -> bool:
    stripped = cell.replace(",", "").replace(".", "").replace("-", "")
    return stripped.isdigit() and bool(stripped)


class ResultsLog:
    """Accumulates experiment records and writes them as JSON.

    Benchmarks append one record per measured configuration; the file
    under ``benchmarks/results/`` is the raw data behind EXPERIMENTS.md.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.records: list[dict] = []

    def add(self, experiment: str, **fields) -> None:
        """Record one measurement row."""
        self.records.append({"experiment": experiment, **fields})

    def save(self) -> None:
        """Write all records to :attr:`path` (creating directories)."""
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        with open(self.path, "w", encoding="utf-8") as out:
            json.dump(self.records, out, indent=2, sort_keys=True)
