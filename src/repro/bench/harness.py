"""Measurement harness for the paper's experiments.

Builds a verification method, replays a query workload through the
provider and the client, and aggregates exactly the quantities the
paper plots: communication overhead split into S-prf/T-prf (Fig. 8a),
item counts (Fig. 8b), offline construction time (Fig. 8c), plus
proof-generation and client-verification wall times (§VI text).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field

from repro.core.framework import VerificationResult
from repro.core.method import VerificationMethod, get_method
from repro.crypto.signer import Signer
from repro.errors import MethodError
from repro.graph.graph import SpatialGraph
from repro.workload.queries import QueryWorkload


@dataclass
class MethodRun:
    """Aggregated measurements for one (method, workload) pair."""

    method: str
    params: dict
    num_queries: int
    construction_seconds: float
    network_tree_seconds: float
    #: Means over the workload.
    total_kb: float
    s_prf_kb: float
    t_prf_kb: float
    s_items: float
    t_items: float
    prove_ms: float
    verify_ms: float
    failures: list[str] = field(default_factory=list)

    @property
    def all_verified(self) -> bool:
        """Whether the client accepted every honest response."""
        return not self.failures


def build_method(graph: SpatialGraph, signer: Signer, name: str,
                 **params) -> VerificationMethod:
    """Owner-side build with wall-time bookkeeping.

    ``method.construction_seconds`` records the authenticated-hint
    construction only (the paper's Fig. 8c quantity); the shared
    graph-node Merkle tree is timed separately by the harness.
    """
    return get_method(name).build(graph, signer, **params)


def run_workload(
    method: VerificationMethod,
    workload: QueryWorkload,
    verify_signature,
    *,
    require_verified: bool = True,
) -> MethodRun:
    """Replay *workload* through provider and client, collecting stats."""
    verifier = get_method(method.name)
    totals: list[float] = []
    s_kb: list[float] = []
    t_kb: list[float] = []
    s_items: list[int] = []
    t_items: list[int] = []
    prove_ms: list[float] = []
    verify_ms: list[float] = []
    failures: list[str] = []

    for source, target in workload:
        start = time.perf_counter()
        response = method.answer(source, target)
        prove_ms.append((time.perf_counter() - start) * 1000)

        start = time.perf_counter()
        result: VerificationResult = verifier.verify(
            source, target, response, verify_signature
        )
        verify_ms.append((time.perf_counter() - start) * 1000)
        if not result.ok:
            failures.append(f"({source},{target}): {result.reason} {result.detail}")

        sizes = response.sizes()
        totals.append(sizes.total_kbytes)
        s_kb.append(sizes.s_prf_bytes / 1024)
        t_kb.append((sizes.t_prf_bytes + sizes.path_bytes) / 1024)
        s_items.append(sizes.s_items)
        t_items.append(sizes.t_items)

    if require_verified and failures:
        raise MethodError(
            f"{method.name}: {len(failures)} honest responses rejected, e.g. "
            f"{failures[0]}"
        )
    bundle_seconds = getattr(getattr(method, "_bundle", None), "build_seconds", 0.0)
    return MethodRun(
        method=method.name,
        params={},
        num_queries=len(workload),
        construction_seconds=method.construction_seconds,
        network_tree_seconds=bundle_seconds,
        total_kb=statistics.fmean(totals),
        s_prf_kb=statistics.fmean(s_kb),
        t_prf_kb=statistics.fmean(t_kb),
        s_items=statistics.fmean(s_items),
        t_items=statistics.fmean(t_items),
        prove_ms=statistics.fmean(prove_ms),
        verify_ms=statistics.fmean(verify_ms),
        failures=failures,
    )
