"""Asyncio load driver: hundreds of verified clients on one thread.

The SLO harness's spawn-per-client model (one process or thread per
simulated client) tops out around a few dozen concurrent connections —
far short of the C=500–2000 keep-alive regime the serving core is built
for.  This module supplies the demand side at that scale:

* :class:`AsyncRemoteClient` — the bytes-first verifying client over an
  :class:`~repro.api.transport.AsyncTransport`.  It owns **no** verify
  logic of its own: every reply frame goes through the same
  ``interpret_*`` methods of :class:`~repro.api.client.RemoteClient`
  that the sync client uses, so a response accepted here is exactly a
  response the sync client would accept.
* :class:`AsyncClientPool` — C such clients multiplexed on one private
  event loop behind a *synchronous* facade, so the existing harnesses
  (``run_http_loadtest``, benchmarks, the CLI) drive a
  thousand-connection pool with ordinary function calls.

Each client holds one persistent connection with at most one in-flight
request — the pool models C independent users, not an HTTP/2-style
multiplexer, which keeps measured QPS comparable with the threaded
drivers connection-for-connection.
"""

from __future__ import annotations

import asyncio

from repro.api.client import RemoteClient, RemoteResult
from repro.api.envelope import (
    BatchQueryRequest,
    HelloReply,
    HelloRequest,
    MetricsReply,
    MetricsRequest,
    QueryRequest,
    SUPPORTED_VERSIONS,
    UpdatePushRequest,
    UpdateReply,
    WireUpdate,
)
from repro.api.transport import AsyncTransport
from repro.errors import ProtocolError, ServiceError

#: How many hellos dial concurrently when a pool opens its connections.
#: A thousand simultaneous SYNs can overflow even a deep listen backlog;
#: waves keep the storm bounded without serializing the whole ramp-up.
DEFAULT_CONNECT_WAVE = 128


class _NoSyncTransport:
    """Guard transport for the sync client embedded in an async one.

    :class:`AsyncRemoteClient` reuses :class:`RemoteClient` purely for
    its ``interpret_*`` decoding/verification methods; nothing should
    ever perform a *blocking* roundtrip from inside the event loop.
    The one path that would — the composite verdict's lazy manifest
    fetch — hits this transport and gets a :class:`ProtocolError`,
    which ``_composite_verdict`` converts into a clean failure verdict.
    Point async drivers at single-box frontends; the sharded router has
    its own (process-pool) harness.
    """

    def roundtrip(self, frame: bytes) -> bytes:
        raise ProtocolError(
            "async clients cannot perform sync roundtrips (composite "
            "replies need a manifest fetched out-of-band)"
        )


class AsyncRemoteClient:
    """Verified queries over one awaited persistent connection.

    The async twin of :class:`~repro.api.client.RemoteClient`: the
    transport layer is awaited, the interpretation layer is shared —
    ``query``/``query_batch`` return the very same
    :class:`~repro.api.client.RemoteResult` values.
    """

    def __init__(self, transport: AsyncTransport, verify_signature, *,
                 min_descriptor_version: "int | None" = None) -> None:
        self.transport = transport
        #: The sync client supplying decode + verify (never roundtrips).
        self.client = RemoteClient(
            _NoSyncTransport(), verify_signature,
            min_descriptor_version=min_descriptor_version,
        )

    def require_version(self, version: int) -> None:
        """Raise the freshness floor (monotonic; see ``Client``)."""
        self.client.require_version(version)

    @property
    def min_descriptor_version(self) -> "int | None":
        """The current stale-replay rejection floor."""
        return self.client.min_descriptor_version

    # ------------------------------------------------------------------
    async def hello(self, versions=SUPPORTED_VERSIONS) -> HelloReply:
        """Negotiate a protocol version; learn what is being served."""
        reply = await self.transport.roundtrip(
            HelloRequest(tuple(versions)).to_frame())
        return self.client._raise_on_error(
            self.client.interpret_exchange(reply, HelloReply))

    async def query(self, source: int, target: int) -> RemoteResult:
        """One verified shortest path query over the wire."""
        reply = await self.transport.roundtrip(
            QueryRequest(source, target).to_frame())
        return self.client.interpret_query_reply(source, target, reply)

    async def query_batch(self, pairs, *,
                          multiproof: bool = True) -> "list[RemoteResult]":
        """A burst of queries in one frame, individually verified."""
        pairs = [(int(s), int(t)) for s, t in pairs]
        reply = await self.transport.roundtrip(
            BatchQueryRequest(tuple(pairs), multiproof=multiproof).to_frame())
        return self.client.interpret_batch_reply(pairs, reply)

    async def query_many(self, pairs) -> "list[RemoteResult]":
        """Alias of :meth:`query_batch` (sync-client parity)."""
        return await self.query_batch(pairs)

    async def push_updates(self, updates) -> UpdateReply:
        """Push an owner mutation batch (server must hold the signer)."""
        wire_updates = tuple(
            WireUpdate(u.kind, u.u, u.v, getattr(u, "weight", 0.0))
            for u in updates
        )
        reply = await self.transport.roundtrip(
            UpdatePushRequest(wire_updates).to_frame())
        return self.client._raise_on_error(
            self.client.interpret_exchange(reply, UpdateReply))

    async def metrics(self) -> MetricsReply:
        """The server's current metrics window."""
        reply = await self.transport.roundtrip(MetricsRequest().to_frame())
        return self.client._raise_on_error(
            self.client.interpret_exchange(reply, MetricsReply))

    async def close(self) -> None:
        """Drop the held connection."""
        await self.transport.close()


class AsyncClientPool:
    """C verifying clients, one event loop, a synchronous facade.

    >>> pool = AsyncClientPool(url, pk.verify, clients=256)  # doctest: +SKIP
    >>> with pool:                                           # doctest: +SKIP
    ...     pool.hello()          # opens all 256 connections, in waves
    ...     results = pool.run_chunk(queries)     # round-robin across C
    ...     assert all(r.ok for r in results)

    The pool owns a private event loop and runs it *on the calling
    thread* inside each facade call — no background thread, no
    cross-thread handoff on the hot path.  All methods must therefore
    be called from one thread (the driver's), which is how every
    harness in this repo already behaves.
    """

    def __init__(self, base_url: str, verify_signature, *,
                 clients: int, timeout: float = 30.0,
                 connect_wave: int = DEFAULT_CONNECT_WAVE) -> None:
        if clients < 1:
            raise ServiceError(f"clients must be >= 1, got {clients}")
        if connect_wave < 1:
            raise ServiceError(
                f"connect_wave must be >= 1, got {connect_wave}")
        self.base_url = base_url
        self.clients = clients
        self._wave = connect_wave
        self._loop = asyncio.new_event_loop()
        self._members = [
            AsyncRemoteClient(AsyncTransport(base_url, timeout=timeout),
                              verify_signature)
            for _ in range(clients)
        ]
        self._closed = False

    def _run(self, coroutine):
        if self._closed:
            coroutine.close()  # silence the never-awaited warning
            raise ServiceError("client pool is closed")
        return self._loop.run_until_complete(coroutine)

    # ------------------------------------------------------------------
    def hello(self) -> HelloReply:
        """Open every connection (staggered waves); one hello reply.

        Each member performs a real handshake, so after this call the
        pool holds ``clients`` established keep-alive connections —
        the connection-hold soak counts on that.  Raises
        :class:`ProtocolError` if any member's handshake fails.
        """

        async def ramp():
            replies = []
            for start in range(0, len(self._members), self._wave):
                wave = self._members[start:start + self._wave]
                replies.extend(await asyncio.gather(
                    *(member.hello() for member in wave)))
            return replies

        return self._run(ramp())[0]

    def run_chunk(self, pairs, *,
                  batch_size: int = 0) -> "list[RemoteResult]":
        """Drive *pairs* through the pool; every reply verified.

        The chunk is split round-robin across the C members; each
        member replays its share sequentially on its own persistent
        connection (one in-flight request per simulated user), and all
        members run concurrently on the loop.  With ``batch_size > 0``
        each member groups its share into multiproof BATCH frames.
        """
        pairs = [(int(s), int(t)) for s, t in pairs]
        shares = [pairs[i::self.clients] for i in range(self.clients)]

        async def drive(member: AsyncRemoteClient, share):
            results = []
            if batch_size:
                for start in range(0, len(share), batch_size):
                    results.extend(
                        await member.query_batch(share[start:start + batch_size]))
            else:
                for vs, vt in share:
                    results.append(await member.query(vs, vt))
            return results

        async def run_all():
            outcomes = await asyncio.gather(
                *(drive(member, share)
                  for member, share in zip(self._members, shares) if share))
            return [result for outcome in outcomes for result in outcome]

        return self._run(run_all())

    def push_updates(self, updates) -> UpdateReply:
        """Push a mutation batch through member 0's connection."""
        return self._run(self._members[0].push_updates(updates))

    def require_version(self, version: int) -> None:
        """Raise every member's freshness floor."""
        for member in self._members:
            member.require_version(version)

    def metrics(self) -> MetricsReply:
        """The server's metrics window, via member 0."""
        return self._run(self._members[0].metrics())

    def close(self) -> None:
        """Close every connection and the pool's event loop."""
        if self._closed:
            return

        async def close_all():
            # gather must run inside the loop: called from sync code it
            # would bind its futures to a different (default) loop.
            await asyncio.gather(
                *(member.close() for member in self._members),
                return_exceptions=True,
            )

        try:
            self._loop.run_until_complete(close_all())
        finally:
            self._closed = True
            self._loop.close()

    def __enter__(self) -> "AsyncClientPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
