"""One-command workload profiling with regression gating.

``profile_method`` replays a query workload against a built method and
condenses the run into a single :class:`BenchRecord` — QPS, latency
percentiles, construction seconds and proof bytes — in the same
list-of-records JSON shape as ``benchmarks/results/*.json``, so one
``BENCH_*.json`` file is directly comparable with the benchmark suite's
output.  ``compare_records`` turns two such records into a pass/fail
regression verdict; the CI perf-smoke job runs it against the
checked-in ``benchmarks/perf_baseline.json``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from statistics import quantiles

from repro.core.method import SignatureVerifier, VerificationMethod, get_method
from repro.errors import ReproError, ServiceError


@dataclass(frozen=True)
class BenchRecord:
    """Condensed measurements of one (method, workload) replay."""

    experiment: str
    method: str
    label: str
    nodes: int
    edges: int
    queries: int
    construction_seconds: float
    network_tree_seconds: float
    qps: float
    p50_ms: float
    p95_ms: float
    proof_bytes: float
    verified: bool
    #: Live-update metrics (``repro-spv bench --updates N``): mean
    #: incremental ``apply_update`` seconds per single-edge re-weight,
    #: seconds for one from-scratch rebuild on the same graph, and
    #: their ratio.  Zero when the bench ran without updates.
    updates: int = 0
    update_seconds: float = 0.0
    rebuild_seconds: float = 0.0
    update_speedup: float = 0.0

    def as_dict(self) -> dict:
        """Plain-dict form (JSON record)."""
        return asdict(self)

    #: Metrics gated by :func:`compare_records`, with the direction in
    #: which each one regresses (``False`` = smaller is better).
    #: Degenerate (``<= 0``) values are skipped, so records without
    #: update measurements pass old and new baselines alike.
    GATED = {
        "qps": True,
        "p50_ms": False,
        "p95_ms": False,
        "construction_seconds": False,
        "proof_bytes": False,
        "update_seconds": False,
        "update_speedup": True,
    }


def _percentile(sorted_ms: "list[float]", fraction: float) -> float:
    if len(sorted_ms) == 1:
        return sorted_ms[0]
    cuts = quantiles(sorted_ms, n=100, method="inclusive")
    return cuts[max(0, min(98, round(fraction * 100) - 1))]


def profile_method(
    method: VerificationMethod,
    queries: "list[tuple[int, int]]",
    verify_signature: "SignatureVerifier | None" = None,
    *,
    label: str = "",
) -> BenchRecord:
    """Replay *queries* through the provider and summarize the run.

    With *verify_signature*, every response is also checked by a real
    client (outside the timed window), so ``verified`` doubles as an
    end-to-end soundness bit.
    """
    if not queries:
        raise ServiceError("empty bench workload")
    graph = method.graph
    latencies_ms: list[float] = []
    proof_bytes: list[int] = []
    responses = []
    window_start = time.perf_counter()
    for source, target in queries:
        start = time.perf_counter()
        response = method.answer(source, target)
        wire = response.encode()
        latencies_ms.append((time.perf_counter() - start) * 1000)
        proof_bytes.append(len(wire))
        responses.append(response)
    elapsed = time.perf_counter() - window_start

    verified = True
    if verify_signature is not None:
        verifier = get_method(method.name)
        for (source, target), response in zip(queries, responses):
            if not verifier.verify(source, target, response, verify_signature).ok:
                verified = False
    latencies_ms.sort()
    return BenchRecord(
        experiment="bench",
        method=method.name,
        label=label,
        nodes=graph.num_nodes,
        edges=graph.num_edges,
        queries=len(queries),
        construction_seconds=method.construction_seconds,
        network_tree_seconds=getattr(
            getattr(method, "_bundle", None), "build_seconds", 0.0
        ),
        qps=len(queries) / elapsed if elapsed else 0.0,
        p50_ms=_percentile(latencies_ms, 0.50),
        p95_ms=_percentile(latencies_ms, 0.95),
        proof_bytes=sum(proof_bytes) / len(proof_bytes),
        verified=verified,
    )


def profile_updates(
    method: VerificationMethod,
    signer,
    *,
    count: int = 5,
    seed: int = 2010,
) -> "dict[str, float]":
    """Measure incremental ``apply_update`` against a full rebuild.

    Applies *count* seeded single-edge re-weights one at a time through
    the incremental path (timing each), then times one from-scratch
    re-publish on the final graph — the method's user-facing build
    parameters, i.e. what an owner without the update pipeline would
    run after every change (for LDM that includes landmark selection).
    Returns ``{"updates", "update_seconds", "rebuild_seconds",
    "update_speedup"}`` ready to merge into a :class:`BenchRecord` via
    :func:`dataclasses.replace`.
    """
    from repro.workload.updates import UPDATE_WEIGHT, generate_update_workload

    if count < 1:
        raise ServiceError(f"need at least one update, got {count}")
    graph = method.graph
    workload = generate_update_workload(graph, count, seed=seed,
                                        kinds=(UPDATE_WEIGHT,))
    incremental = 0.0
    for update in workload:
        update.apply(graph)
        start = time.perf_counter()
        method.apply_update(signer)
        incremental += time.perf_counter() - start
    update_seconds = incremental / count

    start = time.perf_counter()
    type(method).build(graph, signer,
                       **(method._publish_params or method._build_params))
    rebuild_seconds = time.perf_counter() - start
    return {
        "updates": count,
        "update_seconds": update_seconds,
        "rebuild_seconds": rebuild_seconds,
        "update_speedup": rebuild_seconds / update_seconds
        if update_seconds > 0 else 0.0,
    }


def write_record(record: BenchRecord, path: str) -> None:
    """Write one record as a ``benchmarks/results``-style JSON list."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as out:
        json.dump([record.as_dict()], out, indent=2, sort_keys=True)


def load_record(path: str) -> dict:
    """First record of a ``BENCH_*.json`` / results-style file."""
    with open(path, "r", encoding="utf-8") as infile:
        data = json.load(infile)
    if isinstance(data, list):
        if not data:
            raise ReproError(f"{path}: empty record list")
        data = data[0]
    if not isinstance(data, dict):
        raise ReproError(f"{path}: expected a JSON record or list of records")
    return data


def compare_records(
    current: dict,
    baseline: dict,
    *,
    max_regression: float = 2.0,
) -> "list[str]":
    """Regressions of *current* vs *baseline* beyond *max_regression*.

    Returns human-readable messages, one per regressed metric (empty
    means pass).  Metrics missing from either record are skipped, so
    baselines stay forward-compatible when fields are added.
    """
    if max_regression <= 0:
        raise ReproError(f"max_regression must be positive, got {max_regression}")
    problems: list[str] = []
    for metric, higher_is_better in BenchRecord.GATED.items():
        if metric not in current or metric not in baseline:
            continue
        now = float(current[metric])
        then = float(baseline[metric])
        if then <= 0 or now <= 0:
            continue  # degenerate timings carry no signal
        ratio = then / now if higher_is_better else now / then
        if ratio > max_regression:
            problems.append(
                f"{metric}: {now:.6g} vs baseline {then:.6g} "
                f"({ratio:.2f}x worse, limit {max_regression:g}x)"
            )
    if not current.get("verified", True):
        problems.append("verification failed: client rejected a served proof")
    return problems
