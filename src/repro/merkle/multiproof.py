"""Merkle multiproofs: one deduplicated digest set for k leaf sets.

A BATCH of k queries against the same tree discloses k (overlapping)
leaf sets.  Shipping k independent covers repeats every digest that two
covers share — on road-network workloads the high levels of the tree
are shared by almost every query.  A *multiproof* ships the union
disclosure once: the cover of the **union** of the k leaf sets.

The two facts that make this sound and cheap:

* **The union cover is a subset of the union of the per-set covers.**
  A node enters the union cover iff its subtree holds no union leaf
  while its parent's does; any such node satisfies the same rule for
  every individual set whose leaves share its parent, so its digest was
  already present in at least one per-set cover.  The server therefore
  assembles the shared digest set purely from the per-query responses —
  no access to the tree itself is needed (:func:`merge_entries`).
* **Reconstructing the union root computes every digest any per-set
  cover needs.**  A per-set cover node either contains a union leaf
  (its digest falls out of the union sweep) or contains none (it *is*
  a shared entry).  :func:`expand_multi` records the sweep's
  intermediate digests and re-emits each set's standalone cover —
  byte-identical to what :meth:`MerkleTree.prove` on that set alone
  returns, so per-query verification downstream is unchanged.

Nothing here weakens verification: the recovered digests derive from
the (untrusted) payloads and shared entries, so any tampering surfaces
as a root mismatch exactly as it would for an independent proof.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.crypto.hashing import HashFunction, get_hash
from repro.errors import MerkleError
from repro.merkle.proof import MerkleProofEntry
from repro.merkle.tree import _LEAF_TAG, MerkleTree, reconstruct_root


def union_indices(leaf_sets: "Sequence[Sequence[int] | set[int]]") -> list[int]:
    """Sorted, deduplicated union of the given leaf index sets."""
    union: set[int] = set()
    for leaf_set in leaf_sets:
        union.update(leaf_set)
    if not union:
        raise MerkleError("cannot prove an empty union of disclosure sets")
    return sorted(union)


def cover_indices(
    num_leaves: int, fanout: int, disclosed: "Sequence[int] | set[int]",
) -> list[tuple[int, int]]:
    """The ``(level, index)`` coordinates of the cover for *disclosed*.

    Pure arithmetic on the tree shape — no digests involved — emitting
    coordinates in the same order :meth:`MerkleTree.prove` emits
    entries, so pairing each coordinate with its digest reproduces a
    ``prove`` output byte-for-byte.
    """
    indices = sorted(set(disclosed))
    if not indices:
        raise MerkleError("cannot prove an empty disclosure set")
    if indices[0] < 0 or indices[-1] >= num_leaves:
        raise MerkleError(
            f"leaf indices must be in [0, {num_leaves}); got "
            f"[{indices[0]}, {indices[-1]}]"
        )
    sizes = MerkleTree.level_sizes(num_leaves, fanout)
    coords: list[tuple[int, int]] = []
    frontier = indices
    for level in range(len(sizes) - 1):
        size = sizes[level]
        parents: list[int] = []
        count = len(frontier)
        i = 0
        while i < count:
            parent = frontier[i] // fanout
            parents.append(parent)
            lo = parent * fanout
            hi = min(lo + fanout, size)
            for child in range(lo, hi):
                if i < count and frontier[i] == child:
                    i += 1
                    continue
                coords.append((level, child))
        frontier = parents
    powers = [fanout ** level for level in range(len(sizes))]
    coords.sort(key=lambda c: powers[c[0]] * c[1])
    return coords


def merge_entries(
    num_leaves: int,
    fanout: int,
    disclosed: "Sequence[int] | set[int]",
    pooled: "Mapping[tuple[int, int], bytes]",
) -> list[MerkleProofEntry]:
    """Assemble the union cover from digests pooled across covers.

    *pooled* maps ``(level, index)`` to a digest, typically gathered
    from the per-query proof entries of independently answered
    responses.  Because the union cover is a subset of the union of the
    per-set covers, every needed digest is present when the responses
    were produced against the same tree version; a gap means the inputs
    were inconsistent and is reported as :class:`MerkleError`.
    """
    entries: list[MerkleProofEntry] = []
    for level, index in cover_indices(num_leaves, fanout, disclosed):
        try:
            digest = pooled[(level, index)]
        except KeyError:
            raise MerkleError(
                f"pooled proof entries are missing hash entry "
                f"(level={level}, index={index})"
            ) from None
        entries.append(MerkleProofEntry(level, index, digest))
    return entries


def _digest_map(
    entries: "Iterable[MerkleProofEntry]",
) -> dict[tuple[int, int], bytes]:
    """Index entries by coordinate, rejecting conflicting duplicates."""
    digest_of: dict[tuple[int, int], bytes] = {}
    for entry in entries:
        coord = (entry.level, entry.index)
        known = digest_of.get(coord)
        if known is not None and known != entry.digest:
            raise MerkleError(
                f"conflicting digests for hash entry "
                f"(level={entry.level}, index={entry.index})"
            )
        digest_of[coord] = entry.digest
    return digest_of


def verify_multi(
    num_leaves: int,
    fanout: int,
    hash_fn: "str | HashFunction",
    disclosed_leaves: Mapping[int, bytes],
    entries: "Iterable[MerkleProofEntry]",
) -> bytes:
    """Reconstruct the root from a union disclosure and its multiproof.

    The multiproof counterpart of :func:`~repro.merkle.tree.reconstruct_root`
    — same sweep, plus a strictness pass rejecting entry lists that
    carry conflicting digests for one coordinate (a single-cover proof
    never repeats a coordinate; a shared set must stay consistent).
    """
    deduped = [
        MerkleProofEntry(level, index, digest)
        for (level, index), digest in _digest_map(entries).items()
    ]
    return reconstruct_root(num_leaves, fanout, hash_fn, disclosed_leaves, deduped)


def expand_multi(
    num_leaves: int,
    fanout: int,
    hash_fn: "str | HashFunction",
    disclosed_leaves: Mapping[int, bytes],
    entries: "Iterable[MerkleProofEntry]",
    leaf_sets: "Sequence[Sequence[int] | set[int]]",
) -> "tuple[bytes, list[list[MerkleProofEntry]]]":
    """Expand a multiproof back into per-set standalone covers.

    Runs the union root reconstruction while *recording* every digest it
    computes, then replays the cover arithmetic for each leaf set and
    pulls each needed digest from the recorded sweep or the shared
    entries.  Returns ``(union root, [cover entries per leaf set])``;
    each recovered cover is byte-identical to ``MerkleTree.prove(set)``
    on an honest tree, and on a tampered input the per-set covers
    faithfully propagate the tampering into a wrong root.

    Raises :class:`MerkleError` when the shared set is structurally
    incomplete for the union or for any requested leaf set (an
    *omission* attack — detected, never silently accepted).
    """
    if num_leaves <= 0:
        raise MerkleError("num_leaves must be positive")
    if fanout < 2:
        raise MerkleError(f"fanout must be >= 2, got {fanout}")
    hash_fn = get_hash(hash_fn)
    if not disclosed_leaves:
        raise MerkleError("no disclosed leaves")
    indices = sorted(disclosed_leaves)
    if indices[0] < 0 or indices[-1] >= num_leaves:
        raise MerkleError("disclosed leaf index out of range")
    for leaf_set in leaf_sets:
        for index in leaf_set:
            if index not in disclosed_leaves:
                raise MerkleError(
                    f"leaf set references undisclosed leaf {index}"
                )

    digest_of = _digest_map(entries)
    sizes = MerkleTree.level_sizes(num_leaves, fanout)

    # Union sweep, as in ``reconstruct_root``, but keeping every level's
    # computed digests: ``known[level][index]`` holds the digest of each
    # node whose subtree contains a union leaf.
    factory = hash_fn.factory
    known: list[dict[int, bytes]] = [
        {
            index: factory(_LEAF_TAG + disclosed_leaves[index]).digest()
            for index in indices
        }
    ]
    frontier = indices
    for level in range(1, len(sizes)):
        child_size = sizes[level - 1]
        child_level = level - 1
        computed = known[child_level]
        parents: list[int] = []
        next_computed: dict[int, bytes] = {}
        count = len(frontier)
        i = 0
        while i < count:
            parent = frontier[i] // fanout
            parents.append(parent)
            lo = parent * fanout
            hi = min(lo + fanout, child_size)
            parts = [b"\x01"]
            for child in range(lo, hi):
                if i < count and frontier[i] == child:
                    i += 1
                if child in computed:
                    parts.append(computed[child])
                    continue
                try:
                    parts.append(digest_of[(child_level, child)])
                except KeyError:
                    raise MerkleError(
                        f"integrity proof is missing hash entry "
                        f"(level={child_level}, index={child})"
                    ) from None
            next_computed[parent] = hash_fn.digest(*parts)
        known.append(next_computed)
        frontier = parents
    root = known[-1][0]

    # Per-set covers: every needed digest is either a shared entry (no
    # union leaf below it) or was computed by the sweep above.
    covers: list[list[MerkleProofEntry]] = []
    for leaf_set in leaf_sets:
        cover: list[MerkleProofEntry] = []
        for level, index in cover_indices(num_leaves, fanout, leaf_set):
            digest = known[level].get(index)
            if digest is None:
                digest = digest_of.get((level, index))
            if digest is None:
                raise MerkleError(
                    f"multiproof cannot recover hash entry "
                    f"(level={level}, index={index})"
                )
            cover.append(MerkleProofEntry(level, index, digest))
        covers.append(cover)
    return root, covers
