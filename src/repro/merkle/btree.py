"""Key-sorted authenticated dictionary (the paper's "Merkle B-tree").

FULL materializes ``<vi, vj, dist>`` tuples sorted by the composite key
``(vi.id, vj.id)`` in a Merkle B-tree; HYP does the same for hyper-edge
weights between border-node pairs.  Structurally this is an f-ary
Merkle tree whose leaves are ordered by key, plus a key index that maps
lookups to leaf positions; proofs are the standard Merkle covers, i.e.
the "sibling digests along the root path" the paper describes.

Keys are single integers.  Composite pair keys are flattened with
:func:`pair_key`, which both FULL (all ordered pairs) and HYP
(unordered border pairs) use.  The key array is a NumPy ``int64``
vector, so a tree over millions of distance tuples stays compact and
lookups are ``searchsorted`` calls.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.crypto.hashing import HashFunction
from repro.errors import MerkleError
from repro.merkle.proof import MerkleProofEntry
from repro.merkle.tree import MerkleTree


def pair_key(a: int, b: int, universe: int) -> int:
    """Flatten the composite key ``(a, b)`` into one integer.

    ``universe`` must exceed every id; the mapping is ``a * universe + b``
    which preserves the lexicographic order of ``(a, b)``.
    """
    if a < 0 or b < 0 or a >= universe or b >= universe:
        raise MerkleError(f"pair ({a}, {b}) outside universe {universe}")
    return a * universe + b


class MerkleBTree:
    """Authenticated dictionary over sorted integer keys.

    Parameters
    ----------
    keys:
        Strictly increasing integer keys (one per payload).
    payloads:
        Canonical encodings aligned with *keys*; consumed streaming.
    fanout, hash_fn:
        As for :class:`~repro.merkle.tree.MerkleTree`.
    """

    __slots__ = ("_keys", "_tree")

    def __init__(
        self,
        keys: "Sequence[int] | np.ndarray",
        payloads: Iterable[bytes],
        *,
        fanout: int = 2,
        hash_fn: "str | HashFunction" = "sha1",
    ) -> None:
        key_array = np.asarray(keys, dtype=np.int64)
        if key_array.ndim != 1 or key_array.size == 0:
            raise MerkleError("keys must be a non-empty 1-D sequence")
        if key_array.size > 1 and not np.all(np.diff(key_array) > 0):
            raise MerkleError("keys must be strictly increasing")
        self._keys = key_array
        self._tree = MerkleTree(payloads, fanout=fanout, hash_fn=hash_fn)
        if self._tree.num_leaves != key_array.size:
            raise MerkleError(
                f"{key_array.size} keys but {self._tree.num_leaves} payloads"
            )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def dump_state(self) -> "tuple[np.ndarray, bytes]":
        """``(key array, level blob)`` — see :meth:`load_state`."""
        return self._keys, self._tree.dump_state()

    @classmethod
    def load_state(
        cls,
        keys: "Sequence[int] | np.ndarray",
        tree_state: bytes,
        *,
        fanout: int = 2,
        hash_fn: "str | HashFunction" = "sha1",
    ) -> "MerkleBTree":
        """Rehydrate from :meth:`dump_state` output.

        Digests are installed verbatim (``prove`` stays byte-identical);
        key monotonicity and the key/leaf count match are re-validated,
        raising :class:`MerkleError` on any inconsistency.
        """
        key_array = np.asarray(keys, dtype=np.int64)
        if key_array.ndim != 1 or key_array.size == 0:
            raise MerkleError("keys must be a non-empty 1-D sequence")
        if key_array.size > 1 and not np.all(np.diff(key_array) > 0):
            raise MerkleError("keys must be strictly increasing")
        tree = MerkleTree.load_state(tree_state, num_leaves=int(key_array.size),
                                     fanout=fanout, hash_fn=hash_fn)
        btree = cls.__new__(cls)
        btree._keys = key_array
        btree._tree = tree
        return btree

    # ------------------------------------------------------------------
    @property
    def tree(self) -> MerkleTree:
        """The underlying Merkle tree (root, digests)."""
        return self._tree

    @property
    def root(self) -> bytes:
        """Root digest (signed by the owner)."""
        return self._tree.root

    @property
    def num_entries(self) -> int:
        """Number of key/payload entries."""
        return int(self._keys.size)

    def index_of(self, key: int) -> int:
        """Leaf position of *key*; raises :class:`MerkleError` if absent."""
        pos = int(np.searchsorted(self._keys, key))
        if pos >= self._keys.size or int(self._keys[pos]) != key:
            raise MerkleError(f"key {key} not present")
        return pos

    def indices_of(self, keys: Iterable[int]) -> list[int]:
        """Leaf positions for several keys (all must be present)."""
        return [self.index_of(key) for key in keys]

    def prove(self, keys: Iterable[int]) -> "tuple[list[int], list[MerkleProofEntry]]":
        """Cover proof for the payloads stored under *keys*.

        Returns ``(leaf indices, ΓT entries)``; the caller ships the
        payloads, the indices and the entries to the client.
        """
        indices = self.indices_of(keys)
        return indices, self._tree.prove(indices)

    def prove_multi(
        self, key_sets: "Iterable[Iterable[int]]",
    ) -> "tuple[list[list[int]], list[int], list[MerkleProofEntry]]":
        """One deduplicated multiproof for several key sets.

        Returns ``(per-set leaf indices, union leaf indices, shared ΓT
        entries)`` — the :meth:`MerkleTree.prove_multi` analogue with
        the key-to-position lookup folded in.
        """
        index_sets = [self.indices_of(keys) for keys in key_sets]
        union, entries = self._tree.prove_multi(index_sets)
        return index_sets, union, entries
