"""f-ary Merkle hash tree with multi-leaf cover proofs.

Structure (paper §III-B / Fig. 3b): leaves are the digests of the
ordered payloads (extended tuples, distance tuples); each internal
entry is the digest of the concatenation of its (up to f) children;
the final short level may have fewer children, exactly like the ``⊥``
slots in the paper's figure.  The root is signed by the data owner.

Implementation notes
--------------------
* Levels are stored as **contiguous byte strings** (one digest after
  another), not per-node objects.  A tree over 10 million leaves with
  SHA-1 costs ~200 MB of levels for fanout 2 and builds in seconds,
  which is what makes the FULL method's all-pairs distance tree
  feasible in Python.
* Domain separation: leaf digests are ``H(0x00 || payload)`` and
  internal digests ``H(0x01 || children)``, preventing the classic
  leaf/internal second-preimage confusion.  (The 2010 paper predates
  that practice; it changes nothing measurable.)
* ``prove`` implements Merkle's inclusion rule for an arbitrary leaf
  subset: a hash entry enters ΓT iff its subtree contains no disclosed
  leaf and its parent's subtree does.
"""

from __future__ import annotations

import struct
from typing import Iterable, Mapping, Sequence

from repro.crypto.hashing import HashFunction, get_hash
from repro.errors import MerkleError
from repro.merkle.proof import MerkleProofEntry

_LEAF_TAG = b"\x00"
_NODE_TAG = b"\x01"


def leaf_digest(payload: bytes, hash_fn: "str | HashFunction") -> bytes:
    """Digest of a leaf payload (domain-separated)."""
    return get_hash(hash_fn).digest(_LEAF_TAG, payload)


class MerkleTree:
    """f-ary Merkle hash tree over an ordered sequence of payloads.

    Parameters
    ----------
    payloads:
        Iterable of canonical byte encodings, in leaf order.  Consumed
        streaming, so generators over millions of tuples are fine.
    fanout:
        Number of children per internal node (paper sweeps 2..32).
    hash_fn:
        Hash name or :class:`HashFunction` (default SHA-1, as in 2010).
    leaf_digests:
        Alternative to *payloads*: pre-computed leaf digests as one
        contiguous byte string (length must be a multiple of the digest
        size).  Exactly one of the two must be given.
    """

    __slots__ = ("hash_fn", "fanout", "_levels", "_num_leaves")

    def __init__(
        self,
        payloads: "Iterable[bytes] | None" = None,
        *,
        fanout: int = 2,
        hash_fn: "str | HashFunction" = "sha1",
        leaf_digests: "bytes | None" = None,
    ) -> None:
        if fanout < 2:
            raise MerkleError(f"fanout must be >= 2, got {fanout}")
        if (payloads is None) == (leaf_digests is None):
            raise MerkleError("provide exactly one of payloads / leaf_digests")
        self.hash_fn = get_hash(hash_fn)
        self.fanout = fanout
        d = self.hash_fn.digest_size

        factory = self.hash_fn.factory
        if payloads is not None:
            tag = _LEAF_TAG
            # One-shot hashing: hashlib's constructor consumes the
            # tagged payload in a single C call, so each leaf costs two
            # C calls instead of four (construct/update/update/digest).
            level0 = b"".join(
                [factory(tag + payload).digest() for payload in payloads]
            )
        else:
            if len(leaf_digests) % d != 0:
                raise MerkleError(
                    f"leaf_digests length {len(leaf_digests)} is not a multiple "
                    f"of the digest size {d}"
                )
            level0 = bytes(leaf_digests)

        self._num_leaves = len(level0) // d
        if self._num_leaves == 0:
            raise MerkleError("cannot build a Merkle tree over zero leaves")

        levels = [level0]
        tag = _NODE_TAG
        step = fanout * d
        chunker = struct.Struct(f"{step}s")
        current = level0
        while len(current) > d:
            # Hash level-by-level over contiguous chunks of the level
            # buffer.  ``iter_unpack`` slices the full sibling groups at
            # C speed; only the short trailing group (when the level
            # size is not a fanout multiple) needs explicit handling.
            split = len(current) - len(current) % step
            parents = [
                factory(tag + chunk).digest()
                for (chunk,) in chunker.iter_unpack(current[:split])
            ]
            if split < len(current):
                parents.append(factory(tag + current[split:]).digest())
            current = b"".join(parents)
            levels.append(current)
        self._levels = levels

    # ------------------------------------------------------------------
    @property
    def num_leaves(self) -> int:
        """Number of leaves."""
        return self._num_leaves

    @property
    def num_levels(self) -> int:
        """Number of levels including the leaf level and the root level."""
        return len(self._levels)

    @property
    def root(self) -> bytes:
        """The root digest (what the owner signs)."""
        return self._levels[-1]

    def level_size(self, level: int) -> int:
        """Number of entries at *level* (0 = leaves)."""
        return len(self._levels[level]) // self.hash_fn.digest_size

    def digest_at(self, level: int, index: int) -> bytes:
        """The digest stored at ``(level, index)``."""
        if not 0 <= level < len(self._levels):
            raise MerkleError(f"level {level} out of range")
        if not 0 <= index < self.level_size(level):
            raise MerkleError(f"index {index} out of range at level {level}")
        d = self.hash_fn.digest_size
        return self._levels[level][index * d : (index + 1) * d]

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def dump_state(self) -> bytes:
        """Flat level-order digest array: every level, leaves first.

        The blob plus ``(num_leaves, fanout, hash_fn)`` reproduces the
        tree exactly (see :meth:`load_state`); no per-node structure is
        written because the level sizes are arithmetic consequences of
        the leaf count and the fanout.
        """
        return b"".join(self._levels)

    @classmethod
    def level_sizes(cls, num_leaves: int, fanout: int) -> list[int]:
        """Entries per level (leaves first) for a tree of this shape."""
        if num_leaves <= 0:
            raise MerkleError("cannot build a Merkle tree over zero leaves")
        if fanout < 2:
            raise MerkleError(f"fanout must be >= 2, got {fanout}")
        sizes = [num_leaves]
        while sizes[-1] > 1:
            sizes.append((sizes[-1] + fanout - 1) // fanout)
        return sizes

    @classmethod
    def load_state(
        cls,
        data: bytes,
        *,
        num_leaves: int,
        fanout: int,
        hash_fn: "str | HashFunction" = "sha1",
    ) -> "MerkleTree":
        """Rehydrate a tree from :meth:`dump_state` output.

        The digests are installed verbatim (no re-hashing), so
        :meth:`prove` output is byte-identical to the tree that was
        dumped; the caller is expected to cross-check :attr:`root`
        against a trusted (signed) copy.  Raises :class:`MerkleError`
        when the blob length does not match the declared shape.
        """
        hash_fn = get_hash(hash_fn)
        d = hash_fn.digest_size
        sizes = cls.level_sizes(num_leaves, fanout)
        if len(data) != sum(sizes) * d:
            raise MerkleError(
                f"level blob is {len(data)} bytes; a {num_leaves}-leaf "
                f"fanout-{fanout} tree needs {sum(sizes) * d}"
            )
        data = bytes(data)
        levels: list[bytes] = []
        pos = 0
        for size in sizes:
            levels.append(data[pos:pos + size * d])
            pos += size * d
        tree = cls.__new__(cls)
        tree.hash_fn = hash_fn
        tree.fanout = fanout
        tree._num_leaves = num_leaves
        tree._levels = levels
        return tree

    # ------------------------------------------------------------------
    def update_leaf(self, index: int, payload: bytes) -> None:
        """Replace one leaf payload and refresh digests up to the root.

        Cost is ``O(f · log_f n)`` hashes — this is what makes dynamic
        road networks (weight updates, closures) affordable: the owner
        re-signs the new root instead of rebuilding the tree.
        """
        self.update_leaves({index: payload})

    def update_leaves(self, payloads: "Mapping[int, bytes]") -> None:
        """Replace a batch of leaf payloads and refresh shared root paths.

        The batch form of :meth:`update_leaf`, and what the incremental
        re-authentication paths call: each level buffer is copied
        *once* per batch (``update_leaf`` in a loop would copy the full
        leaf level per call — ruinous on the million-leaf FULL distance
        tree), digests along overlapping root paths are recomputed
        once, and the result is identical to applying the updates one
        at a time.
        """
        if not payloads:
            return
        indices = sorted(payloads)
        if indices[0] < 0 or indices[-1] >= self._num_leaves:
            raise MerkleError(
                f"leaf indices must be in [0, {self._num_leaves}); got "
                f"[{indices[0]}, {indices[-1]}]"
            )
        d = self.hash_fn.digest_size
        f = self.fanout
        factory = self.hash_fn.factory

        levels = self._levels
        level0 = bytearray(levels[0])
        for index in indices:
            digest = factory(_LEAF_TAG + payloads[index]).digest()
            level0[index * d : (index + 1) * d] = digest
        levels[0] = bytes(level0)

        frontier = indices
        for level in range(1, len(levels)):
            below = levels[level - 1]
            child_count = len(below) // d
            parents: list[int] = []
            previous = -1
            for child in frontier:
                parent = child // f
                if parent != previous:
                    parents.append(parent)
                    previous = parent
            row = bytearray(levels[level])
            for parent in parents:
                lo, hi = parent * f, min((parent + 1) * f, child_count)
                digest = factory(_NODE_TAG + below[lo * d : hi * d]).digest()
                row[parent * d : (parent + 1) * d] = digest
            levels[level] = bytes(row)
            frontier = parents

    def prove(self, disclosed: "Sequence[int] | set[int]") -> list[MerkleProofEntry]:
        """Integrity proof ΓT for the *disclosed* leaf indices.

        Returns the minimal set of hash entries that, combined with the
        disclosed leaves' own digests, reconstructs the root.
        """
        indices = sorted(set(disclosed))
        if not indices:
            raise MerkleError("cannot prove an empty disclosure set")
        if indices[0] < 0 or indices[-1] >= self._num_leaves:
            raise MerkleError(
                f"leaf indices must be in [0, {self._num_leaves}); got "
                f"[{indices[0]}, {indices[-1]}]"
            )
        # Iterative range-frontier sweep (no recursion): the frontier is
        # the sorted list of entry indices at the current level whose
        # subtrees contain disclosed leaves.  Per level, every sibling
        # of a frontier entry that is *not* itself on the frontier is a
        # proof entry (its subtree contains no disclosed leaf while its
        # parent's does — exactly Merkle's inclusion rule), and the
        # frontier contracts to the parents.  Cost is O(proof size +
        # |disclosed| · height), versus the old recursion's walk over
        # every covered subtree.
        entries: list[MerkleProofEntry] = []
        f = self.fanout
        d = self.hash_fn.digest_size
        frontier = indices
        for level in range(len(self._levels) - 1):
            data = self._levels[level]
            size = len(data) // d
            parents: list[int] = []
            count = len(frontier)
            i = 0
            while i < count:
                parent = frontier[i] // f
                parents.append(parent)
                lo = parent * f
                hi = lo + f
                if hi > size:
                    hi = size
                for child in range(lo, hi):
                    if i < count and frontier[i] == child:
                        i += 1
                        continue
                    entries.append(MerkleProofEntry(
                        level, child, data[child * d : (child + 1) * d]
                    ))
            frontier = parents
        # Entry subtrees are pairwise disjoint, so ordering by covered
        # leaf range reproduces the pre-order (DFS) sequence the
        # recursive walk emitted — proofs stay byte-identical.
        powers = [f ** level for level in range(len(self._levels))]
        entries.sort(key=lambda e: powers[e.level] * e.index)
        return entries

    def prove_multi(
        self, leaf_sets: "Sequence[Sequence[int] | set[int]]",
    ) -> "tuple[list[int], list[MerkleProofEntry]]":
        """One deduplicated multiproof for k disclosure sets.

        Returns ``(union leaf indices, shared ΓT entries)`` — the cover
        of the **union** of the sets, which is both smaller than the
        concatenation of the k independent covers and sufficient to
        recover each of them byte-for-byte
        (:func:`~repro.merkle.multiproof.expand_multi`).
        """
        from repro.merkle.multiproof import union_indices

        union = union_indices(leaf_sets)
        return union, self.prove(union)


def reconstruct_root(
    num_leaves: int,
    fanout: int,
    hash_fn: "str | HashFunction",
    disclosed_leaves: Mapping[int, bytes],
    entries: "Iterable[MerkleProofEntry]",
) -> bytes:
    """Client-side root reconstruction.

    Parameters
    ----------
    disclosed_leaves:
        ``{leaf index: payload encoding}`` for the tuples in ΓS.  The
        leaf digests are recomputed here, so a tampered tuple changes
        the reconstructed root.
    entries:
        The ΓT hash entries produced by :meth:`MerkleTree.prove`.

    Raises
    ------
    MerkleError
        If the proof is structurally incomplete (a needed digest is
        missing) or malformed.  A *wrong* root is not detected here —
        the caller compares the returned root against the signed one.
    """
    if num_leaves <= 0:
        raise MerkleError("num_leaves must be positive")
    if fanout < 2:
        raise MerkleError(f"fanout must be >= 2, got {fanout}")
    hash_fn = get_hash(hash_fn)
    if not disclosed_leaves:
        raise MerkleError("no disclosed leaves")
    indices = sorted(disclosed_leaves)
    if indices[0] < 0 or indices[-1] >= num_leaves:
        raise MerkleError("disclosed leaf index out of range")

    digest_of: dict[tuple[int, int], bytes] = {}
    for entry in entries:
        digest_of[(entry.level, entry.index)] = entry.digest

    # Level sizes, bottom-up.
    sizes = [num_leaves]
    while sizes[-1] > 1:
        sizes.append((sizes[-1] + fanout - 1) // fanout)

    # Iterative bottom-up frontier sweep, mirroring the iterative
    # ``MerkleTree.prove``: ``computed`` holds the digests recomputed at
    # the current level for every entry whose subtree contains a
    # disclosed leaf; sibling digests come from the proof entries.  A
    # missing sibling means the proof is structurally incomplete.
    factory = hash_fn.factory
    computed: dict[int, bytes] = {
        index: factory(_LEAF_TAG + disclosed_leaves[index]).digest()
        for index in indices
    }
    frontier = indices
    for level in range(1, len(sizes)):
        child_size = sizes[level - 1]
        child_level = level - 1
        parents: list[int] = []
        next_computed: dict[int, bytes] = {}
        count = len(frontier)
        i = 0
        while i < count:
            parent = frontier[i] // fanout
            parents.append(parent)
            lo = parent * fanout
            hi = lo + fanout
            if hi > child_size:
                hi = child_size
            parts = [_NODE_TAG]
            for child in range(lo, hi):
                if i < count and frontier[i] == child:
                    i += 1
                if child in computed:
                    parts.append(computed[child])
                    continue
                try:
                    parts.append(digest_of[(child_level, child)])
                except KeyError:
                    raise MerkleError(
                        f"integrity proof is missing hash entry "
                        f"(level={child_level}, index={child})"
                    ) from None
            next_computed[parent] = hash_fn.digest(*parts)
        computed = next_computed
        frontier = parents
    return computed[0]
