"""Merkle hash tree authentication structures.

Two structures back all four verification methods:

* :class:`~repro.merkle.tree.MerkleTree` — an f-ary Merkle hash tree
  over an ordered sequence of payloads (the paper's network
  certification tree, §III-B, with configurable fanout, Fig. 11a);
* :class:`~repro.merkle.btree.MerkleBTree` — a key-sorted authenticated
  dictionary over composite integer keys (the paper's "distance Merkle
  B-tree" used by FULL and HYP).

Batch serving shares one digest set across k queries through the
multiproof helpers (:mod:`repro.merkle.multiproof`): ``prove_multi``
emits the union cover, :func:`verify_multi` reconstructs the root from
it, and :func:`expand_multi` recovers each query's standalone cover
byte-for-byte so per-query verification stays unchanged.
"""

from repro.merkle.proof import MerkleProofEntry, decode_proof_entries, encode_proof_entries
from repro.merkle.tree import MerkleTree, reconstruct_root
from repro.merkle.btree import MerkleBTree, pair_key
from repro.merkle.multiproof import (
    cover_indices,
    expand_multi,
    merge_entries,
    union_indices,
    verify_multi,
)

__all__ = [
    "MerkleTree",
    "MerkleBTree",
    "MerkleProofEntry",
    "reconstruct_root",
    "pair_key",
    "encode_proof_entries",
    "decode_proof_entries",
    "cover_indices",
    "expand_multi",
    "merge_entries",
    "union_indices",
    "verify_multi",
]
