"""Merkle hash tree authentication structures.

Two structures back all four verification methods:

* :class:`~repro.merkle.tree.MerkleTree` — an f-ary Merkle hash tree
  over an ordered sequence of payloads (the paper's network
  certification tree, §III-B, with configurable fanout, Fig. 11a);
* :class:`~repro.merkle.btree.MerkleBTree` — a key-sorted authenticated
  dictionary over composite integer keys (the paper's "distance Merkle
  B-tree" used by FULL and HYP).
"""

from repro.merkle.proof import MerkleProofEntry, decode_proof_entries, encode_proof_entries
from repro.merkle.tree import MerkleTree, reconstruct_root
from repro.merkle.btree import MerkleBTree, pair_key

__all__ = [
    "MerkleTree",
    "MerkleBTree",
    "MerkleProofEntry",
    "reconstruct_root",
    "pair_key",
    "encode_proof_entries",
    "decode_proof_entries",
]
