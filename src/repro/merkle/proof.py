"""Merkle proof entries and their wire encoding."""

from __future__ import annotations

from dataclasses import dataclass

from repro.encoding import Decoder, Encoder


@dataclass(frozen=True, order=True)
class MerkleProofEntry:
    """One hash entry of an integrity proof ΓT.

    ``(level, index)`` locates the digest in the tree: level 0 holds
    leaf digests, the top level holds the root.  Following Merkle's
    rule, an entry is included iff its subtree contains no disclosed
    leaf while its parent's subtree does.
    """

    level: int
    index: int
    digest: bytes


def encode_proof_entries(entries: "list[MerkleProofEntry]", enc: Encoder) -> None:
    """Append *entries* to an encoder (count-prefixed)."""
    enc.write_uint(len(entries))
    for entry in entries:
        enc.write_uint(entry.level)
        enc.write_uint(entry.index)
        enc.write_bytes(entry.digest)


def decode_proof_entries(dec: Decoder) -> "list[MerkleProofEntry]":
    """Inverse of :func:`encode_proof_entries`.

    Strict: an entry occupies at least three bytes (level, index,
    digest length), so a count claiming more entries than the remaining
    bytes could hold is rejected up front as an
    :class:`~repro.errors.EncodingError`.
    """
    count = dec.read_count(3)
    return [
        MerkleProofEntry(dec.read_uint(), dec.read_uint(), dec.read_bytes())
        for _ in range(count)
    ]
