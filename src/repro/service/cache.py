"""Versioned LRU proof cache.

Proofs are deterministic for a fixed graph: DIJ/FULL/LDM/HYP all derive
their disclosure sets from the query and the (signed) authenticated
structures, so a response computed once for ``(method, source, target)``
can be replayed to every later client verbatim.  The cache therefore
stores fully-assembled :class:`~repro.core.proofs.QueryResponse` objects
keyed by that triple.

Staleness is handled through the graph's mutation counter
(:attr:`~repro.graph.graph.SpatialGraph.version`): every lookup and
insert carries the version the caller observed, and the first operation
that arrives with a different version drops the whole cache.  Per-entry
invalidation would buy nothing: however incrementally the owner patched
the hints (:meth:`~repro.core.method.VerificationMethod.apply_update`),
the re-signed descriptor supersedes every cached proof at once — each
one carries the old root and the old version.

The cache is thread-safe; :class:`~repro.service.server.ProofServer`
shares one instance across its worker threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.proofs import QueryResponse
from repro.errors import ServiceError

#: Default number of cached responses (a few MB of proofs on the paper's
#: default workload sizes).
DEFAULT_CAPACITY = 1024

#: Cache key: ``(method name, source node, target node)``.
CacheKey = tuple[str, int, int]


@dataclass
class CacheStats:
    """Hit/miss bookkeeping, exposed via :attr:`ProofCache.stats`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache was never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass(frozen=True)
class CacheEntry:
    """A cached response plus its wire size (encoded once, at insert)."""

    response: QueryResponse
    proof_bytes: int


@dataclass
class _State:
    """Entries plus the graph version they were computed against."""

    version: "int | None" = None
    entries: "OrderedDict[CacheKey, CacheEntry]" = field(default_factory=OrderedDict)


class ProofCache:
    """LRU cache of query responses, invalidated by graph version.

    >>> cache = ProofCache(capacity=2)
    >>> cache.get(("DIJ", 1, 2), version=0) is None
    True
    >>> cache.stats.misses
    1
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ServiceError(f"cache capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._state = _State()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    @property
    def capacity(self) -> int:
        """Maximum number of cached responses."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._state.entries)

    # ------------------------------------------------------------------
    def _sync_version(self, version: int) -> None:
        """Drop everything if the observed graph version moved (locked)."""
        state = self._state
        if state.version != version:
            if state.entries:
                self.stats.invalidations += 1
                state.entries.clear()
            state.version = version

    def get(self, key: CacheKey, version: int) -> "CacheEntry | None":
        """Look up *key*; ``None`` on miss.  Hits refresh LRU recency."""
        with self._lock:
            self._sync_version(version)
            entry = self._state.entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._state.entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, key: CacheKey, version: int,
            response: QueryResponse, proof_bytes: int) -> CacheEntry:
        """Insert a response computed against graph *version*."""
        with self._lock:
            self._sync_version(version)
            entries = self._state.entries
            entry = CacheEntry(response, proof_bytes)
            entries[key] = entry
            entries.move_to_end(key)
            while len(entries) > self._capacity:
                entries.popitem(last=False)
                self.stats.evictions += 1
            return entry

    def clear(self) -> None:
        """Drop all entries (stats are kept; use a new cache to reset them)."""
        with self._lock:
            self._state.entries.clear()
            self._state.version = None
