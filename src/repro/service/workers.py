"""Pre-forked multi-process serving over one shared artifact.

CPython's GIL caps a single process at roughly one core of proof
computation no matter how many threads the HTTP frontend runs.  The
classic escape is the pre-fork model: N worker *processes*, each with
its own interpreter, all listening on the **same** TCP port via
``SO_REUSEPORT`` so the kernel load-balances connections across them —
no proxy in front, no port map to distribute.

This is exactly what the persistent-artifact split enables: workers do
not build anything and hold no signer — each one maps the same
read-only ``.rspv`` file (:func:`repro.store.load_method`), so the big
sections (distance matrices, Merkle levels, landmark vectors) are
shared through the page cache rather than duplicated per process.

Lifecycle: the parent reserves the port (so ``port=0`` resolves once),
spawns workers, and waits for each to report readiness.  On
:meth:`WorkerPool.stop` each worker receives ``SIGTERM``, shuts its
listener down, and ships its final
:class:`~repro.service.metrics.MetricsSnapshot` back over a queue; the
parent aggregates them (:func:`~repro.service.metrics.merge_snapshots`)
into the fleet view the CLI prints.

Workers are ``spawn``-started, not forked: the parent may be running
arbitrary threads (pytest, a load generator), and forking a threaded
CPython process is a deadlock lottery.  Spawn costs a fresh interpreter
per worker — which the artifact cold-start was built to make cheap.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import signal
import socket
import threading
import time

from repro.errors import ServiceError
from repro.service.cache import DEFAULT_CAPACITY
from repro.service.metrics import MetricsSnapshot, merge_snapshots

#: How long one worker may take to map the artifact and start listening.
DEFAULT_START_TIMEOUT = 60.0

#: Grace period for workers to flush final metrics after SIGTERM.
DEFAULT_STOP_TIMEOUT = 10.0


def _worker_main(index: int, artifact_path: str, host: str, port: int,
                 cache_size: int, frontend: str, events) -> None:
    """One worker process: map the artifact, serve until SIGTERM."""
    from repro.service.aio import AsyncProofHttpServer
    from repro.service.http import ProofHttpServer
    from repro.service.server import ProofServer

    # The parent owns Ctrl-C; workers exit on the explicit SIGTERM so a
    # terminal interrupt cannot drop a worker before its final metrics.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    server_cls = (AsyncProofHttpServer if frontend == "async"
                  else ProofHttpServer)
    try:
        server = ProofServer.from_artifact(artifact_path,
                                           cache_size=cache_size)
        http_server = server_cls(server.dispatcher(), host=host,
                                 port=port, reuse_port=True)
    except Exception as exc:  # noqa: BLE001 — report, don't stack-trace
        events.put(("error", index, f"{type(exc).__name__}: {exc}"))
        return
    http_server.start()
    events.put(("ready", index, os.getpid()))
    stop.wait()
    http_server.close()
    events.put(("metrics", index, server.snapshot()))


class WorkerPool:
    """N ``SO_REUSEPORT`` HTTP workers serving one artifact.

    >>> with WorkerPool("de.ldm.rspv", workers=4) as pool:  # doctest: +SKIP
    ...     print(pool.url)        # one URL, kernel-balanced across 4
    ...                            # processes
    >>> pool.aggregate.qps         # doctest: +SKIP
    """

    def __init__(self, artifact_path: str, *, workers: int,
                 host: str = "127.0.0.1", port: int = 0,
                 cache_size: int = DEFAULT_CAPACITY,
                 start_timeout: float = DEFAULT_START_TIMEOUT,
                 frontend: str = "threaded") -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if frontend not in ("threaded", "async"):
            raise ServiceError(
                f"frontend must be 'threaded' or 'async', got {frontend!r}")
        if not hasattr(socket, "SO_REUSEPORT"):
            raise ServiceError(
                "this platform has no SO_REUSEPORT; run a single worker"
            )
        from repro.store import is_artifact

        if not is_artifact(artifact_path):
            raise ServiceError(
                f"{artifact_path!r} is not a .rspv artifact; workers load "
                f"their state from a packed artifact (see repro-spv pack)"
            )
        self.artifact_path = artifact_path
        self.workers = workers
        self.host = host
        self.port = port
        self.cache_size = cache_size
        self.start_timeout = start_timeout
        self.frontend = frontend
        self._processes: list = []
        self._events = None
        self._reservation: "socket.socket | None" = None
        #: Per-worker final snapshots, filled by :meth:`stop`.
        self.worker_snapshots: list[MetricsSnapshot] = []
        #: Fleet-wide aggregate, filled by :meth:`stop`.
        self.aggregate: "MetricsSnapshot | None" = None

    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        """Base URL of the shared listener group (always connectable:
        wildcard binds advertise loopback, IPv6 hosts are bracketed)."""
        from repro.service.http import connectable_host, format_netloc

        return f"http://{format_netloc(connectable_host(self.host), self.port)}"

    def _reserve_port(self) -> None:
        """Resolve ``port=0`` once so every worker binds the same port.

        The reservation socket joins the REUSEPORT group without
        listening (a non-listening member receives no connections), and
        is closed after the workers are up.
        """
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        try:
            sock.bind((self.host, self.port))
        except OSError as exc:
            sock.close()
            raise ServiceError(
                f"cannot bind {self.host}:{self.port}: {exc}"
            ) from exc
        self.port = sock.getsockname()[1]
        self._reservation = sock

    def start(self) -> "WorkerPool":
        """Spawn the workers and wait until every one is listening."""
        if self._processes:
            raise ServiceError("worker pool already started")
        self._reserve_port()
        context = multiprocessing.get_context("spawn")
        self._events = context.Queue()
        for index in range(self.workers):
            process = context.Process(
                target=_worker_main,
                args=(index, self.artifact_path, self.host, self.port,
                      self.cache_size, self.frontend, self._events),
                name=f"repro-worker-{index}",
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        try:
            self._await_ready()
        except Exception:
            self.stop()
            raise
        finally:
            if self._reservation is not None:
                self._reservation.close()
                self._reservation = None
        return self

    def _await_ready(self) -> None:
        deadline = time.monotonic() + self.start_timeout
        ready = 0
        reported: set[int] = set()
        while ready < self.workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"only {ready}/{self.workers} workers became ready "
                    f"within {self.start_timeout:.0f}s"
                )
            try:
                kind, index, payload = self._events.get(
                    timeout=min(0.25, remaining))
            except queue.Empty:
                # A worker that died during interpreter bootstrap never
                # reaches the event queue — fail fast instead of
                # sitting out the whole timeout.
                for position, process in enumerate(self._processes):
                    if position not in reported and not process.is_alive():
                        raise ServiceError(
                            f"worker {position} exited with code "
                            f"{process.exitcode} before becoming ready"
                        )
                continue
            if kind == "error":
                raise ServiceError(f"worker {index} failed to start: {payload}")
            if kind == "ready":
                ready += 1
                reported.add(index)

    # ------------------------------------------------------------------
    def stop(self, *, timeout: float = DEFAULT_STOP_TIMEOUT) -> MetricsSnapshot:
        """Terminate the workers and aggregate their final metrics.

        Idempotent, and a no-op (empty aggregate) when the pool never
        started.
        """
        if self._events is None:
            self.aggregate = merge_snapshots(self.worker_snapshots)
            return self.aggregate
        expected = sum(1 for p in self._processes if p.is_alive())
        for process in self._processes:
            if process.is_alive():
                process.terminate()  # SIGTERM — the workers' shutdown signal
        snapshots: list[MetricsSnapshot] = []
        deadline = time.monotonic() + timeout
        while len(snapshots) < expected and time.monotonic() < deadline:
            try:
                kind, _index, payload = self._events.get(
                    timeout=max(0.05, deadline - time.monotonic()))
            except queue.Empty:
                break
            if kind == "metrics":
                snapshots.append(payload)
        while True:  # non-blocking sweep for any stragglers already queued
            try:
                kind, _index, payload = self._events.get_nowait()
            except queue.Empty:
                break
            if kind == "metrics":
                snapshots.append(payload)
        for process in self._processes:
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
        self._processes = []
        self.worker_snapshots = snapshots
        self.aggregate = merge_snapshots(snapshots)
        return self.aggregate

    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
