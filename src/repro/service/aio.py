"""Asyncio HTTP frontend: the same wire contract, one event loop.

:class:`AsyncProofHttpServer` speaks exactly the protocol of the
threaded :class:`~repro.service.http.ProofHttpServer` — ``POST /rpc``
with one request frame in, one reply frame out (status 200 even for
protocol-level errors, which ride *inside* the frame), ``GET /healthz``
and ``GET /metrics`` — but replaces the thread-per-connection model
with a single event loop multiplexing every connection:

* **keep-alive with pipelined frames** — a client may write several
  requests back to back without waiting for replies; responses come
  back in order on the same connection;
* **typed timeouts** — a connection that stalls mid-request (slow-loris
  body, short body) is answered with an
  :data:`~repro.api.codes.E_REQUEST_TIMEOUT` error frame and closed,
  exactly like the threaded frontend; an *idle* keep-alive peer is
  silently closed after ``handler_timeout``;
* **bounded connection budget** — beyond ``max_connections`` concurrent
  peers, new connections are still answered but shed with
  ``Connection: close``, so a flood degrades to one-shot service
  instead of unbounded per-connection state;
* **offloaded proof work** — ``dispatcher.dispatch`` runs on a sized
  :class:`~concurrent.futures.ThreadPoolExecutor` via
  ``run_in_executor``, so the (numpy/hashlib, GIL-releasing) proof
  computation overlaps socket I/O for thousands of idle-ish peers
  instead of serializing behind the loop.

Why an event loop at all: the threaded frontend burns a thread (stack,
scheduler churn) per connection, which caps realistic concurrency at a
few hundred keep-alive peers.  Here per-connection state is one
coroutine, so C=1000+ held connections are routine — the regime the
paper's untrusted-but-scalable provider is meant for.

The public surface mirrors ``ProofHttpServer`` (``url``/``host``/
``port``/``bound_host``, ``start()``/``serve_forever()``/``close()``,
context manager, ``reuse_port`` for ``SO_REUSEPORT`` worker pools) so
the two frontends are drop-in interchangeable everywhere a dispatcher
is served.
"""

from __future__ import annotations

import asyncio
import os
import socket
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.api import codes
from repro.api.envelope import error_frame
from repro.errors import ServiceError
from repro.service.http import (
    DEFAULT_DRAIN_TIMEOUT,
    DEFAULT_HANDLER_TIMEOUT,
    DEFAULT_MAX_KEEPALIVE_REQUESTS,
    MAX_REQUEST_BYTES,
    connectable_host,
    format_netloc,
)

#: Concurrent connections served with keep-alive before new peers are
#: shed with ``Connection: close``.  The loop can *hold* far more, but
#: an unbounded budget lets one misbehaving fleet pin every fd.
DEFAULT_MAX_CONNECTIONS = 4096

#: Listen backlog: connection storms (a thousand clients dialing at
#: once) must queue in the kernel instead of seeing ECONNREFUSED.
DEFAULT_BACKLOG = 1024

#: Upper bound on one header line / the stream reader's buffer chunk.
_READ_LIMIT = 64 * 1024

#: Upper bound on the total header block of one request.
_MAX_HEADER_BYTES = 64 * 1024

_REASONS = {200: "OK", 404: "Not Found", 411: "Length Required",
            413: "Payload Too Large", 501: "Not Implemented"}


def _default_dispatch_workers() -> int:
    """Executor size: enough to overlap proof work, not a thread swarm."""
    return max(2, min(8, os.cpu_count() or 1))


class _Garbage(Exception):
    """The connection's byte stream is not HTTP; answer typed, close."""

    def __init__(self, detail: str) -> None:
        super().__init__(detail)
        self.detail = detail


class AsyncProofHttpServer:
    """An asyncio frontend around a frame dispatcher.

    >>> server = AsyncProofHttpServer(dispatcher, port=0)  # doctest: +SKIP
    >>> with server:                                       # doctest: +SKIP
    ...     client = RemoteClient(HttpTransport(server.url), pk.verify)
    ...     client.query(3, 9).ok

    ``start()`` runs the event loop on a background daemon thread (the
    embedded mode tests and load drivers use); :meth:`serve_forever`
    blocks the caller until :meth:`close` (the CLI mode).  The listening
    socket is bound in the constructor, so ``port`` is resolved (and
    ``url`` usable) before the loop ever runs — same contract as the
    threaded frontend.
    """

    def __init__(self, dispatcher, *, host: str = "127.0.0.1",
                 port: int = 0, reuse_port: bool = False,
                 handler_timeout: float = DEFAULT_HANDLER_TIMEOUT,
                 max_keepalive_requests: int = DEFAULT_MAX_KEEPALIVE_REQUESTS,
                 max_connections: int = DEFAULT_MAX_CONNECTIONS,
                 dispatch_workers: "int | None" = None,
                 drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
                 backlog: int = DEFAULT_BACKLOG) -> None:
        if not hasattr(dispatcher, "dispatch"):
            raise ServiceError(
                f"dispatcher must offer dispatch(bytes) -> bytes, "
                f"got {type(dispatcher).__name__}"
            )
        if handler_timeout <= 0:
            raise ServiceError(
                f"handler_timeout must be positive, got {handler_timeout}"
            )
        if max_keepalive_requests < 0:
            raise ServiceError(
                f"max_keepalive_requests must be >= 0, got "
                f"{max_keepalive_requests}"
            )
        if max_connections < 1:
            raise ServiceError(
                f"max_connections must be >= 1, got {max_connections}"
            )
        if dispatch_workers is not None and dispatch_workers < 1:
            raise ServiceError(
                f"dispatch_workers must be >= 1, got {dispatch_workers}"
            )
        if drain_timeout < 0:
            raise ServiceError(
                f"drain_timeout must be >= 0, got {drain_timeout}"
            )
        self.dispatcher = dispatcher
        self.handler_timeout = handler_timeout
        self.max_keepalive_requests = max_keepalive_requests
        self.max_connections = max_connections
        self.drain_timeout = drain_timeout
        self._backlog = backlog
        self._sock = self._bind(host, port, reuse_port)
        self._executor = ThreadPoolExecutor(
            max_workers=dispatch_workers or _default_dispatch_workers(),
            thread_name_prefix=f"repro-aio-dispatch-{self.port}",
        )
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._thread: "threading.Thread | None" = None
        self._stop: "asyncio.Event | None" = None
        self._ready = threading.Event()
        self._startup_error: "BaseException | None" = None
        self._tasks: "set[asyncio.Task]" = set()
        self._busy: "set[asyncio.Task]" = set()
        self._open_connections = 0
        self._closed = False

    @staticmethod
    def _bind(host: str, port: int, reuse_port: bool) -> socket.socket:
        family = socket.AF_INET6 if ":" in host else socket.AF_INET
        sock = socket.socket(family, socket.SOCK_STREAM)
        try:
            if reuse_port:
                if not hasattr(socket, "SO_REUSEPORT"):
                    raise ServiceError(
                        "this platform has no SO_REUSEPORT; multi-worker "
                        "serving needs one listening socket per process on "
                        "a shared port"
                    )
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((host, port))
        except OSError as exc:
            sock.close()
            raise ServiceError(f"cannot bind {host}:{port}: {exc}") from exc
        except Exception:
            sock.close()
            raise
        sock.setblocking(False)
        return sock

    # ------------------------------------------------------------------
    @property
    def bound_host(self) -> str:
        """The interface actually bound (may be a wildcard)."""
        return self._sock.getsockname()[0]

    @property
    def host(self) -> str:
        """A host clients can dial (wildcard binds resolve to loopback)."""
        return connectable_host(self.bound_host)

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with 0)."""
        return self._sock.getsockname()[1]

    @property
    def url(self) -> str:
        """Base URL, connectable verbatim (see ``ProofHttpServer.url``)."""
        return f"http://{format_netloc(self.host, self.port)}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "AsyncProofHttpServer":
        """Run the event loop on a background daemon thread."""
        if self._thread is not None or self._closed:
            raise ServiceError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop,
            name=f"repro-aio-{self.port}",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            error, self._startup_error = self._startup_error, None
            self.close()
            raise ServiceError(f"async frontend failed to start: {error}")
        return self

    def serve_forever(self) -> None:
        """Serve until :meth:`close` (CLI mode).

        The loop still runs on its helper thread; the calling thread
        blocks, so Ctrl-C lands here and the CLI's ``finally: close()``
        performs the orderly shutdown.
        """
        self.start()
        thread = self._thread
        while thread is not None and thread.is_alive():
            thread.join(timeout=1.0)
            thread = self._thread

    def close(self) -> None:
        """Stop serving: drain busy connections (bounded), drop idle ones."""
        self._closed = True
        thread, self._thread = self._thread, None
        loop, stop = self._loop, self._stop
        if thread is not None and loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # the loop already exited on its own
        if thread is not None:
            thread.join(timeout=self.drain_timeout + 10.0)
        if self._loop is None:
            # Never started: the constructor's socket is still ours.
            self._sock.close()
        self._executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "AsyncProofHttpServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Event-loop side
    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        except BaseException as exc:  # noqa: BLE001 — surfaced via start()
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            except Exception:  # noqa: BLE001 — best-effort loop teardown
                pass
            asyncio.set_event_loop(None)
            loop.close()

    async def _main(self) -> None:
        self._stop = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_connection, sock=self._sock,
                limit=_READ_LIMIT, backlog=self._backlog,
            )
        except BaseException as exc:  # noqa: BLE001 — surfaced via start()
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            await self._drain_tasks()

    async def _drain_tasks(self) -> None:
        """Connection shutdown: cancel idle peers, drain busy ones.

        Mirrors the threaded frontend's close(): a response already
        being produced gets up to ``drain_timeout`` to reach its client;
        a connection merely held open is dropped immediately.
        """
        for task in list(self._tasks):
            if task not in self._busy and not task.done():
                task.cancel()
        busy = [task for task in list(self._tasks) if not task.done()]
        if busy:
            _done, pending = await asyncio.wait(busy,
                                                timeout=self.drain_timeout)
            for task in pending:
                task.cancel()
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._tasks.add(task)
        self._open_connections += 1
        # Budget check happens once, at accept: a shed connection gets
        # full service for its first request, then ``Connection: close``
        # tells a well-behaved client to back off and redial later.
        shed = self._open_connections > self.max_connections
        state = {"served": 0, "close": False}
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass

        async def send(status: int, body: bytes,
                       content_type: str = "application/octet-stream",
                       *, force_close: bool = False) -> None:
            state["served"] += 1
            budget = self.max_keepalive_requests
            close = (force_close or shed or self._stop.is_set()
                     or bool(budget and state["served"] >= budget))
            head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                    f"Server: repro-spv-aio/1\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n")
            if close:
                head += "Connection: close\r\n"
            # One write per response: headers and body leave in a single
            # segment, so no Nagle/delayed-ACK interaction to disable
            # beyond TCP_NODELAY above.
            writer.write(head.encode("latin-1") + b"\r\n" + body)
            await writer.drain()
            state["close"] = close

        try:
            while not self._stop.is_set():
                try:
                    line = await asyncio.wait_for(reader.readline(),
                                                  self.handler_timeout)
                except (asyncio.TimeoutError, TimeoutError):
                    break  # idle keep-alive peer (or header slow-loris)
                except (ValueError, asyncio.LimitOverrunError):
                    await self._send_garbage(send, "oversized request line")
                    break
                if not line:
                    break  # peer hung up between requests
                if line.strip() == b"":
                    continue  # stray CRLF between pipelined requests
                self._busy.add(task)
                try:
                    await self._serve_request(reader, send, line)
                finally:
                    self._busy.discard(task)
                if state["close"]:
                    break
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass  # the peer vanished, or shutdown cancelled an idle wait
        except _Garbage:
            pass  # typed reply already attempted; stream is desynced
        finally:
            self._open_connections -= 1
            self._tasks.discard(task)
            self._busy.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_request(self, reader, send, request_line: bytes) -> None:
        """Parse and answer one request; raises ``_Garbage`` on non-HTTP."""
        parts = request_line.strip().split()
        if len(parts) != 3 or not parts[2].upper().startswith(b"HTTP/"):
            await self._send_garbage(
                send, f"unparseable request line ({len(request_line)} bytes)")
            raise _Garbage("request line")
        verb, path, version = (parts[0].decode("latin-1"),
                               parts[1].decode("latin-1"),
                               parts[2].decode("latin-1"))
        headers = await self._read_headers(reader, send)
        if not version.endswith("1.1") or \
                headers.get("connection", "").lower() == "close":
            # HTTP/1.0 peers get one-shot service; an announced close is
            # honoured after this response.
            await self._answer(reader, send, verb, path, headers,
                               force_close=True)
        else:
            await self._answer(reader, send, verb, path, headers,
                               force_close=False)

    async def _read_headers(self, reader, send) -> "dict[str, str]":
        headers: "dict[str, str]" = {}
        total = 0
        while True:
            try:
                line = await asyncio.wait_for(reader.readline(),
                                              self.handler_timeout)
            except (asyncio.TimeoutError, TimeoutError):
                # The request line arrived but the header block stalled:
                # this is a slow-loris, not an idle peer — answer typed.
                await self._send_timeout(send, "request headers stalled")
                raise _Garbage("header stall") from None
            except (ValueError, asyncio.LimitOverrunError):
                await self._send_garbage(send, "oversized header line")
                raise _Garbage("header line") from None
            if line in (b"\r\n", b"\n"):
                return headers
            if not line:
                raise ConnectionError("peer closed mid-headers")
            total += len(line)
            if total > _MAX_HEADER_BYTES:
                await self._send_garbage(send, "header block too large")
                raise _Garbage("header block")
            name, sep, value = line.partition(b":")
            if not sep:
                await self._send_garbage(send, "malformed header line")
                raise _Garbage("header syntax")
            headers[name.strip().decode("latin-1").lower()] = \
                value.strip().decode("latin-1")

    async def _answer(self, reader, send, verb: str, path: str,
                      headers: "dict[str, str]", *, force_close: bool) -> None:
        if verb == "GET":
            await self._do_get(send, path, force_close=force_close)
            return
        if verb != "POST":
            await send(501, b"unsupported method", "text/plain",
                       force_close=True)
            return
        if path != "/rpc":
            await send(404, b"not found", "text/plain",
                       force_close=force_close)
            return
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            await send(411, b"length required", "text/plain",
                       force_close=force_close)
            return
        if length <= 0:
            await send(411, b"length required", "text/plain",
                       force_close=force_close)
            return
        if length > MAX_REQUEST_BYTES:
            await send(413, b"request too large", "text/plain",
                       force_close=True)
            return
        try:
            frame = await asyncio.wait_for(reader.readexactly(length),
                                           self.handler_timeout)
        except (asyncio.TimeoutError, TimeoutError):
            # The client advertised more body than it sent within the
            # window (slow-loris or a died peer): typed frame, then the
            # connection is dropped — its byte stream is desynced.
            await self._send_timeout(
                send, f"request body stalled: {length} bytes promised")
            raise _Garbage("body stall") from None
        except asyncio.IncompleteReadError as exc:
            await self._send_timeout(
                send, f"short request body: {len(exc.partial)} of "
                      f"{length} bytes")
            raise _Garbage("short body") from None
        # The dispatcher never raises — but it may compute for a while,
        # so it runs on the executor and the loop keeps serving others.
        loop = asyncio.get_running_loop()
        reply = await loop.run_in_executor(
            self._executor, self.dispatcher.dispatch, frame)
        await send(200, reply, force_close=force_close)

    async def _do_get(self, send, path: str, *, force_close: bool) -> None:
        if path == "/healthz":
            await send(200, b"ok", "text/plain", force_close=force_close)
        elif path == "/metrics":
            metrics_json = getattr(self.dispatcher, "metrics_json", None)
            if metrics_json is None:
                await send(404, b"not found", "text/plain",
                           force_close=force_close)
                return
            import json

            body = json.dumps(metrics_json(), sort_keys=True).encode("utf-8")
            await send(200, body, "application/json", force_close=force_close)
        else:
            await send(404, b"not found", "text/plain",
                       force_close=force_close)

    @staticmethod
    async def _send_timeout(send, detail: str) -> None:
        try:
            await send(200, error_frame(codes.E_REQUEST_TIMEOUT, detail),
                       force_close=True)
        except (ConnectionError, OSError):
            pass  # the peer that starved us is often also gone

    @staticmethod
    async def _send_garbage(send, detail: str) -> None:
        """Non-HTTP bytes on the socket: a typed error frame, then close.

        The threaded stdlib frontend answers garbage with an HTML 400;
        here the reply is the protocol's own
        :data:`~repro.api.codes.E_MALFORMED_FRAME` error frame — a
        kept-alive RSPV client that desyncs its stream gets a typed
        diagnosis it can actually decode.
        """
        try:
            await send(200, error_frame(codes.E_MALFORMED_FRAME, detail),
                       force_close=True)
        except (ConnectionError, OSError):
            pass
