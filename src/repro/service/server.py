"""Long-lived proof server wrapping a built verification method.

The library's :class:`~repro.core.framework.ServiceProvider` is a
per-call object: every ``answer`` recomputes the search and reassembles
the proof.  A real provider (Figure 2's third party) is a *server* —
it holds the outsourced structures for months and answers the same
popular queries over and over.  :class:`ProofServer` adds the serving
concerns around the unchanged proof machinery:

* **caching** — responses are deterministic per ``(method, source,
  target)`` for a fixed graph, so they are memoized in a versioned LRU
  (:class:`~repro.service.cache.ProofCache`) that drops itself when the
  graph's mutation counter moves;
* **coalescing** — a burst of queries from one client ships as one
  combined Merkle cover (:func:`repro.core.batch.combine_responses`)
  when the method is batchable (DIJ/LDM): metrics charge the burst the
  combined wire size, while the cache keeps the compact standalone
  responses for later single-query traffic;
* **concurrency** — a thread-pool mode answers independent requests in
  parallel (cache and metrics are lock-protected);
* **metrics** — :class:`~repro.service.metrics.ServerMetrics` tracks
  QPS, p50/p95 serve latency, cache hit rate and proof bytes served.

Per-query failures (unknown node, unreachable target) are *error
responses*, not exceptions: a long-lived server must keep serving the
rest of the stream, so :attr:`ServedResponse.error` carries the reason
and the request is metered like any other.

Soundness is untouched: the server only ever ships responses produced
by the wrapped method, so a client verifies a cached response exactly
as it would a fresh one.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.batch import BatchResponse, combine_responses
from repro.core.method import VerificationMethod
from repro.core.proofs import QueryResponse
from repro.errors import ReproError, ServiceError
from repro.service.cache import DEFAULT_CAPACITY, CacheKey, ProofCache
from repro.service.metrics import MetricsSnapshot, ServerMetrics


@dataclass(frozen=True)
class ProofRequest:
    """One client query as received by the server."""

    source: int
    target: int

    @property
    def pair(self) -> tuple[int, int]:
        """``(source, target)``."""
        return (self.source, self.target)


@dataclass(frozen=True)
class ServedResponse:
    """Server envelope around a query response.

    ``cached`` records whether the proof was replayed from the LRU;
    ``serve_seconds`` is the wall time this request cost the server
    (amortized across the batch for coalesced requests);
    ``proof_bytes`` is the response's standalone wire size.  When the
    provider could not answer (unknown node, unreachable target),
    ``response`` is ``None`` and ``error`` carries the reason.
    """

    response: "QueryResponse | None"
    cached: bool
    serve_seconds: float
    proof_bytes: int
    error: "str | None" = None

    @property
    def ok(self) -> bool:
        """Whether the request produced a proof-bearing response."""
        return self.error is None


@dataclass(frozen=True)
class BurstResult:
    """Outcome of serving one coalesced burst.

    ``served`` is the per-query view, in request order.  ``combined``
    is the wire object actually shipped for the burst's fresh misses —
    one :class:`~repro.core.batch.BatchResponse` under a single Merkle
    cover (``None`` when fewer than two queries missed); clients check
    it with :func:`repro.core.batch.verify_batch`.
    """

    served: tuple[ServedResponse, ...]
    combined: "BatchResponse | None" = None


class ProofServer:
    """Request/response front end for one built verification method.

    >>> server = ProofServer(method)               # doctest: +SKIP
    >>> served = server.handle(ProofRequest(3, 9)) # doctest: +SKIP
    >>> served.response.path_cost                  # doctest: +SKIP
    1987.4
    """

    def __init__(self, method: VerificationMethod, *,
                 cache_size: int = DEFAULT_CAPACITY,
                 max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        self.method = method
        self.cache = ProofCache(cache_size)
        self.metrics = ServerMetrics()
        self.max_workers = max_workers

    # ------------------------------------------------------------------
    def _key(self, source: int, target: int) -> CacheKey:
        return (self.method.name, source, target)

    def _version(self) -> int:
        return self.method.graph.version

    def _store(self, source: int, target: int, version: int,
               response: QueryResponse) -> int:
        """Cache *response*, returning its encoded size."""
        proof_bytes = len(response.encode())
        self.cache.put(self._key(source, target), version, response, proof_bytes)
        return proof_bytes

    def _error(self, start: float, exc: ReproError) -> ServedResponse:
        """Meter and envelope a failed request (errors are not cached)."""
        elapsed = time.perf_counter() - start
        self.metrics.record(elapsed, 0, cached=False)
        return ServedResponse(None, False, elapsed, 0, error=str(exc))

    # ------------------------------------------------------------------
    def answer(self, source: int, target: int) -> ServedResponse:
        """Serve one query, from cache when possible."""
        start = time.perf_counter()
        version = self._version()
        entry = self.cache.get(self._key(source, target), version)
        if entry is not None:
            elapsed = time.perf_counter() - start
            self.metrics.record(elapsed, entry.proof_bytes, cached=True)
            return ServedResponse(entry.response, True, elapsed, entry.proof_bytes)
        try:
            response = self.method.answer(source, target)
        except ReproError as exc:
            return self._error(start, exc)
        proof_bytes = self._store(source, target, version, response)
        elapsed = time.perf_counter() - start
        self.metrics.record(elapsed, proof_bytes, cached=False)
        return ServedResponse(response, False, elapsed, proof_bytes)

    def handle(self, request: ProofRequest) -> ServedResponse:
        """The request/response entry point."""
        return self.answer(request.source, request.target)

    # ------------------------------------------------------------------
    def answer_many(self, queries: "list[tuple[int, int]]", *,
                    coalesce: bool = True) -> "list[ServedResponse]":
        """Serve a burst of queries; see :meth:`serve_burst`."""
        return list(self.serve_burst(queries, coalesce=coalesce).served)

    def serve_burst(self, queries: "list[tuple[int, int]]", *,
                    coalesce: bool = True) -> BurstResult:
        """Serve a burst of queries from one client.

        With ``coalesce`` (and a batchable method), the fresh cache
        misses ship as one combined Merkle cover — the returned
        :attr:`BurstResult.combined` — so each miss is charged the
        amortized batch time and the amortized *combined* wire size,
        which is what crosses the network.  The cache keeps the compact
        standalone responses, so later hits replay the smallest
        verifiable proof.
        """
        if not (coalesce and self.method.supports_batching):
            return BurstResult(tuple(self.answer(vs, vt) for vs, vt in queries))

        version = self._version()
        served: "list[ServedResponse | None]" = [None] * len(queries)
        miss_indices: "dict[tuple[int, int], list[int]]" = {}
        for index, (vs, vt) in enumerate(queries):
            lookup_start = time.perf_counter()
            entry = self.cache.get(self._key(vs, vt), version)
            if entry is not None:
                elapsed = time.perf_counter() - lookup_start
                self.metrics.record(elapsed, entry.proof_bytes, cached=True)
                served[index] = ServedResponse(entry.response, True, elapsed,
                                               entry.proof_bytes)
            else:
                miss_indices.setdefault((vs, vt), []).append(index)

        batch_start = time.perf_counter()
        responses: "dict[tuple[int, int], QueryResponse]" = {}
        for pair in miss_indices:
            try:
                responses[pair] = self.method.answer(pair[0], pair[1])
            except ReproError as exc:
                failed = self._error(batch_start, exc)
                for extra in miss_indices[pair][1:]:
                    # Errors are not cached, so repeats fail afresh.
                    self.metrics.record(0.0, 0, cached=False)
                for index in miss_indices[pair]:
                    served[index] = failed
                batch_start = time.perf_counter()

        combined: "BatchResponse | None" = None
        amortized_wire: "int | None" = None
        if len(responses) > 1:
            combined = combine_responses(self.method, list(responses),
                                         list(responses.values()))
            amortized_wire = -(-combined.total_bytes // len(responses))
        if responses:
            per_query = (time.perf_counter() - batch_start) / len(responses)
            for pair, response in responses.items():
                proof_bytes = self._store(pair[0], pair[1], version, response)
                first, *duplicates = miss_indices[pair]
                wire = amortized_wire if amortized_wire is not None else proof_bytes
                self.metrics.record(per_query, wire, cached=False)
                served[first] = ServedResponse(response, False, per_query,
                                               proof_bytes)
                for index in duplicates:
                    # Repeats within the burst replay the entry just
                    # cached, mirroring the non-coalesced path.
                    self.metrics.record(0.0, proof_bytes, cached=True)
                    served[index] = ServedResponse(response, True, 0.0,
                                                   proof_bytes)
        return BurstResult(
            tuple(s for s in served if s is not None), combined)

    # ------------------------------------------------------------------
    def answer_concurrent(self, queries: "list[tuple[int, int]]", *,
                          max_workers: "int | None" = None
                          ) -> "list[ServedResponse]":
        """Serve independent queries on a thread pool.

        Results come back in request order; a failing request yields
        its own error response without disturbing the others.  Cache
        and metrics are thread-safe; concurrent misses on the same key
        may each compute the proof once (last write wins), which is
        harmless because responses are deterministic.
        """
        workers = max_workers if max_workers is not None else self.max_workers
        if workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {workers}")
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(lambda q: self.answer(q[0], q[1]), queries))

    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """Freeze the current metrics window."""
        return self.metrics.snapshot()

    def reset_metrics(self) -> None:
        """Start a fresh metrics window (the cache is left warm)."""
        self.metrics.reset()
