"""Long-lived proof server wrapping a built verification method.

The library's :class:`~repro.core.framework.ServiceProvider` is a
per-call object: every ``answer`` recomputes the search and reassembles
the proof.  A real provider (Figure 2's third party) is a *server* —
it holds the outsourced structures for months and answers the same
popular queries over and over.  :class:`ProofServer` adds the serving
concerns around the unchanged proof machinery:

* **caching** — responses are deterministic per ``(method, source,
  target)`` for a fixed graph, so they are memoized in a versioned LRU
  (:class:`~repro.service.cache.ProofCache`) that drops itself when the
  graph's mutation counter moves;
* **coalescing** — a burst of queries from one client ships as one
  combined Merkle cover (:func:`repro.core.batch.combine_responses`)
  when the method is batchable (DIJ/LDM): metrics charge the burst the
  combined wire size, while the cache keeps the compact standalone
  responses for later single-query traffic;
* **concurrency** — a thread-pool mode answers independent requests in
  parallel (cache and metrics are lock-protected);
* **live updates** — :meth:`ProofServer.apply_updates` mutates the
  graph and incrementally re-authenticates the wrapped method under
  the exclusive side of a reader/writer gate
  (:class:`~repro.service.sync.ReadWriteLock`), while queries hold the
  shared side: proofs never observe a half-applied update, and the
  version bump drops the cache so no post-update request replays a
  stale proof;
* **metrics** — :class:`~repro.service.metrics.ServerMetrics` tracks
  QPS, p50/p95 serve latency, cache hit rate, proof bytes served and
  update latency.

Per-query failures (unknown node, unreachable target) are *error
responses*, not exceptions: a long-lived server must keep serving the
rest of the stream, so :attr:`ServedResponse.error` carries the reason
and the request is metered like any other.

Soundness is untouched: the server only ever ships responses produced
by the wrapped method, so a client verifies a cached response exactly
as it would a fresh one.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.batch import BatchResponse, combine_responses
from repro.core.method import UpdateReport, VerificationMethod
from repro.core.proofs import QueryResponse
from repro.crypto.signer import Signer
from repro.errors import ReproError, ServiceError
from repro.service.cache import DEFAULT_CAPACITY, CacheKey, ProofCache
from repro.service.metrics import MetricsSnapshot, ServerMetrics
from repro.service.sync import ReadWriteLock
from repro.workload.updates import GraphUpdate


@dataclass(frozen=True)
class ProofRequest:
    """One client query as received by the server."""

    source: int
    target: int

    @property
    def pair(self) -> tuple[int, int]:
        """``(source, target)``."""
        return (self.source, self.target)


#: One owner mutation as received by the server: kind (one of
#: ``"update-weight"`` / ``"add-edge"`` / ``"remove-edge"`` — the
#: changelog vocabulary minus node additions, which a serving
#: deployment handles as a re-publish), endpoints, and weight.  The
#: server speaks the same type the update workload generator emits, so
#: generated streams feed :meth:`ProofServer.apply_updates` directly.
UpdateRequest = GraphUpdate


@dataclass(frozen=True)
class ServedResponse:
    """Server envelope around a query response.

    ``cached`` records whether the proof was replayed from the LRU;
    ``serve_seconds`` is the wall time this request cost the server
    (amortized across the batch for coalesced requests);
    ``proof_bytes`` is the response's standalone wire size.  When the
    provider could not answer (unknown node, unreachable target),
    ``response`` is ``None`` and ``error`` carries the reason.
    """

    response: "QueryResponse | None"
    cached: bool
    serve_seconds: float
    proof_bytes: int
    error: "str | None" = None

    @property
    def ok(self) -> bool:
        """Whether the request produced a proof-bearing response."""
        return self.error is None


@dataclass(frozen=True)
class BurstResult:
    """Outcome of serving one coalesced burst.

    ``served`` is the per-query view, in request order.  ``combined``
    is the wire object actually shipped for the burst's fresh misses —
    one :class:`~repro.core.batch.BatchResponse` under a single Merkle
    cover (``None`` when fewer than two queries missed); clients check
    it with :func:`repro.core.batch.verify_batch`.
    """

    served: tuple[ServedResponse, ...]
    combined: "BatchResponse | None" = None


class ProofServer:
    """Request/response front end for one built verification method.

    >>> server = ProofServer(method)               # doctest: +SKIP
    >>> served = server.handle(ProofRequest(3, 9)) # doctest: +SKIP
    >>> served.response.path_cost                  # doctest: +SKIP
    1987.4
    """

    def __init__(self, method: VerificationMethod, *,
                 cache_size: int = DEFAULT_CAPACITY,
                 max_workers: int = 4,
                 trim_changelog: bool = True) -> None:
        """``trim_changelog`` keeps the graph changelog bounded by
        dropping entries this server's method has absorbed after each
        successful update batch (memory stays flat under a steady
        update stream).  Disable it when other consumers — a second
        method built on the same graph object — still need the older
        entries for their own ``apply_update``.
        """
        if max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        self.method = method
        self.cache = ProofCache(cache_size)
        self.metrics = ServerMetrics()
        self.max_workers = max_workers
        self.trim_changelog = trim_changelog
        #: Queries hold the shared side, updates the exclusive side, so
        #: a proof never assembles against a half-applied update.
        self._update_gate = ReadWriteLock()

    # ------------------------------------------------------------------
    def _key(self, source: int, target: int) -> CacheKey:
        return (self.method.name, source, target)

    def _version(self) -> int:
        return self.method.graph.version

    def _store(self, source: int, target: int, version: int,
               response: QueryResponse) -> int:
        """Cache *response*, returning its encoded size."""
        proof_bytes = len(response.encode())
        self.cache.put(self._key(source, target), version, response, proof_bytes)
        return proof_bytes

    def _error(self, start: float, exc: ReproError) -> ServedResponse:
        """Meter and envelope a failed request (errors are not cached)."""
        elapsed = time.perf_counter() - start
        self.metrics.record(elapsed, 0, cached=False)
        return ServedResponse(None, False, elapsed, 0, error=str(exc))

    # ------------------------------------------------------------------
    def answer(self, source: int, target: int) -> ServedResponse:
        """Serve one query, from cache when possible.

        The whole request — version read, cache probe, proof
        computation, store — runs under the shared side of the update
        gate, so it observes exactly one graph version: once an update
        has committed, no request can replay a pre-update proof (the
        version read under the gate is post-update, and the cache's
        version sync retires the old entries on that very probe).
        """
        start = time.perf_counter()
        with self._update_gate.read():
            version = self._version()
            entry = self.cache.get(self._key(source, target), version)
            if entry is not None:
                elapsed = time.perf_counter() - start
                self.metrics.record(elapsed, entry.proof_bytes, cached=True)
                return ServedResponse(entry.response, True, elapsed,
                                      entry.proof_bytes)
            try:
                response = self.method.answer(source, target)
            except ReproError as exc:
                return self._error(start, exc)
            proof_bytes = self._store(source, target, version, response)
        elapsed = time.perf_counter() - start
        self.metrics.record(elapsed, proof_bytes, cached=False)
        return ServedResponse(response, False, elapsed, proof_bytes)

    def handle(self, request: ProofRequest) -> ServedResponse:
        """The request/response entry point."""
        return self.answer(request.source, request.target)

    def dispatcher(self, *, update_signer: "Signer | None" = None):
        """A wire-protocol :class:`~repro.api.dispatcher.Dispatcher`.

        This is how every transport reaches the server: frontends hand
        frames to the returned dispatcher, and in-process callers use
        it with the trivial transport.  ``update_signer`` enables
        owner update pushes over the wire; leave it unset for
        provider-side deployments, which must not hold signing keys.
        """
        from repro.api.dispatcher import Dispatcher

        return Dispatcher(self, update_signer=update_signer)

    # ------------------------------------------------------------------
    def answer_many(self, queries: "list[tuple[int, int]]", *,
                    coalesce: bool = True) -> "list[ServedResponse]":
        """Serve a burst of queries; see :meth:`serve_burst`."""
        return list(self.serve_burst(queries, coalesce=coalesce).served)

    def serve_burst(self, queries: "list[tuple[int, int]]", *,
                    coalesce: bool = True) -> BurstResult:
        """Serve a burst of queries from one client.

        With ``coalesce`` (and a batchable method), the fresh cache
        misses ship as one combined Merkle cover — the returned
        :attr:`BurstResult.combined` — so each miss is charged the
        amortized batch time and the amortized *combined* wire size,
        which is what crosses the network.  The cache keeps the compact
        standalone responses, so later hits replay the smallest
        verifiable proof.
        """
        if not (coalesce and self.method.supports_batching):
            return BurstResult(tuple(self.answer(vs, vt) for vs, vt in queries))

        combined: "BatchResponse | None" = None
        # One shared-gate acquisition covers the cache scan and the
        # miss computation, so the whole burst observes a single graph
        # version — an update either precedes the burst (hits are
        # retired by the version sync) or follows it entirely.
        with self._update_gate.read():
            version = self._version()
            served: "list[ServedResponse | None]" = [None] * len(queries)
            miss_indices: "dict[tuple[int, int], list[int]]" = {}
            for index, (vs, vt) in enumerate(queries):
                lookup_start = time.perf_counter()
                entry = self.cache.get(self._key(vs, vt), version)
                if entry is not None:
                    elapsed = time.perf_counter() - lookup_start
                    self.metrics.record(elapsed, entry.proof_bytes, cached=True)
                    served[index] = ServedResponse(entry.response, True, elapsed,
                                                   entry.proof_bytes)
                else:
                    miss_indices.setdefault((vs, vt), []).append(index)

            batch_start = time.perf_counter()
            responses: "dict[tuple[int, int], QueryResponse]" = {}
            for pair in miss_indices:
                try:
                    responses[pair] = self.method.answer(pair[0], pair[1])
                except ReproError as exc:
                    failed = self._error(batch_start, exc)
                    for extra in miss_indices[pair][1:]:
                        # Errors are not cached, so repeats fail afresh.
                        self.metrics.record(0.0, 0, cached=False)
                    for index in miss_indices[pair]:
                        served[index] = failed
                    batch_start = time.perf_counter()

            amortized_wire: "int | None" = None
            if len(responses) > 1:
                combined = combine_responses(self.method, list(responses),
                                             list(responses.values()))
                amortized_wire = -(-combined.total_bytes // len(responses))
            if responses:
                per_query = (time.perf_counter() - batch_start) / len(responses)
                for pair, response in responses.items():
                    proof_bytes = self._store(pair[0], pair[1], version, response)
                    first, *duplicates = miss_indices[pair]
                    wire = amortized_wire if amortized_wire is not None else proof_bytes
                    self.metrics.record(per_query, wire, cached=False)
                    served[first] = ServedResponse(response, False, per_query,
                                                   proof_bytes)
                    for index in duplicates:
                        # Repeats within the burst replay the entry just
                        # cached, mirroring the non-coalesced path.
                        self.metrics.record(0.0, proof_bytes, cached=True)
                        served[index] = ServedResponse(response, True, 0.0,
                                                       proof_bytes)
        return BurstResult(
            tuple(s for s in served if s is not None), combined)

    # ------------------------------------------------------------------
    def answer_concurrent(self, queries: "list[tuple[int, int]]", *,
                          max_workers: "int | None" = None
                          ) -> "list[ServedResponse]":
        """Serve independent queries on a thread pool.

        Results come back in request order; a failing request yields
        its own error response without disturbing the others.  Cache
        and metrics are thread-safe; concurrent misses on the same key
        may each compute the proof once (last write wins), which is
        harmless because responses are deterministic.
        """
        workers = max_workers if max_workers is not None else self.max_workers
        if workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {workers}")
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(lambda q: self.answer(q[0], q[1]), queries))

    # ------------------------------------------------------------------
    # live updates
    # ------------------------------------------------------------------
    @property
    def descriptor_version(self) -> int:
        """Graph version of the currently-signed descriptor.

        This is what the owner announces to clients as their freshness
        floor (``min_version``) after an update round.
        """
        return self.method.descriptor.version

    def apply_updates(self, updates: "list[UpdateRequest]",
                      signer: Signer) -> UpdateReport:
        """Apply owner mutations and incrementally re-authenticate.

        Runs under the exclusive side of the update gate: in-flight
        queries drain first, queued queries (including the thread-pool
        mode's) wait, and once the method re-signs, the graph version
        bump retires every cached proof at the next lookup.  The batch
        is atomic from the server's point of view: if any mutation or
        the re-authentication fails (an invalid edge, a removal that
        disconnects the network), the graph is rolled back to its
        pre-batch state and the method re-synced to it before the
        error propagates, so the server keeps serving verifiable
        responses for the old network instead of searching a graph its
        signed trees no longer describe.
        Returns the method's :class:`~repro.core.method.UpdateReport`;
        the update latency is also metered into the current window.
        """
        if not updates:
            raise ServiceError("empty update batch")
        start = time.perf_counter()
        with self._update_gate.write():
            graph = self.method.graph
            base_version = graph.version
            try:
                for update in updates:
                    update.apply(graph)
                report = self.method.apply_update(signer)
            except Exception:
                graph.rollback_to(base_version)
                try:
                    # Re-sync the method against the restored graph:
                    # the method-specific paths order validation before
                    # commits, but an unexpected late failure (say a
                    # transient signer error after leaves were patched)
                    # may have left half-applied hint state.  Replaying
                    # the batch+inverse pairs patches any such leaves
                    # back and re-signs the original roots.
                    self.method.apply_update(signer)
                except Exception:
                    # Still failing (broken signer): the next successful
                    # apply_update heals the same way.
                    pass
                raise
            if self.trim_changelog:
                # The method has absorbed everything up to this point;
                # earlier entries are dead weight on a long-lived server.
                graph.trim_changelog(base_version)
        self.metrics.record_update(time.perf_counter() - start)
        return report

    def update_edge_weight(self, u: int, v: int, weight: float,
                           signer: Signer) -> UpdateReport:
        """Convenience wrapper for a single re-weight update."""
        return self.apply_updates(
            [UpdateRequest("update-weight", u, v, weight)], signer)

    # ------------------------------------------------------------------
    @classmethod
    def from_artifact(cls, path: str, **kwargs) -> "ProofServer":
        """Boot a server straight from a persisted ``.rspv`` artifact.

        The build/serve split made operational: the artifact was built
        (and signed) elsewhere, this process only serves it.  Keyword
        arguments are the regular constructor options.
        """
        from repro.store import load_method

        return cls(load_method(path), **kwargs)

    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """Freeze the current metrics window (cache counters included)."""
        return self.metrics.snapshot(cache=self.cache)

    def reset_metrics(self) -> None:
        """Start a fresh metrics window (the cache is left warm)."""
        self.metrics.reset()
