"""Reader/writer lock for interleaving queries with live updates.

Proof computation is a pure read of the authenticated structures, so
any number of worker threads may answer queries concurrently.  An
owner update, by contrast, mutates the graph, the hint state and the
Merkle levels in many steps — a query racing through the middle of one
would assemble a proof mixing old and new digests.  The server
therefore serves queries under the shared side of this lock and
applies updates under the exclusive side.

The lock is writer-preferring: once an update is waiting, new readers
queue behind it, so a steady query stream cannot starve the update.
Neither side is reentrant — the server never nests acquisitions.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class ReadWriteLock:
    """Many concurrent readers, one exclusive writer, writer-preferring."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        """Shared acquisition (query path)."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        """Exclusive acquisition (update path)."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()
