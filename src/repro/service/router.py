"""The shard router: one front door for a fleet of shard workers.

:class:`ShardRouter` speaks the same framed protocol as a single-box
:class:`~repro.api.dispatcher.Dispatcher`, so every existing frontend
(the HTTP server, the in-process transport, the CLI) can sit in front
of it unchanged.  Behind it, each shard worker is an ordinary proof
server over its shard's core+halo graph — workers do not know they are
sharded.

Routing is untrusted by design.  The router holds the full graph only
to *plan*: it computes the global shortest path on its own index,
splits it into per-shard segments at ownership changes, fans the
segment queries out to the owning workers, and stitches their proofs
into one :class:`~repro.shard.stitch.CompositeResponse`.  Nothing the
router computes is taken on faith — the client re-verifies every
segment against its shard's owner-signed root and every junction
against the owner-signed manifest, so a lying router can only produce
a rejected response or a worse-but-valid path, never a falsely
accepted one.

Queries whose global path never leaves one shard are proxied verbatim:
the reply is the worker's own single-root response, byte-identical to
single-box serving.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor

from repro.api import codes
from repro.api.envelope import (
    BatchItem,
    BatchQueryReply,
    BatchQueryRequest,
    DescriptorRequest,
    ErrorMessage,
    HelloReply,
    HelloRequest,
    ManifestReply,
    ManifestRequest,
    Message,
    MetricsReply,
    MetricsRequest,
    QueryReply,
    QueryRequest,
    SUPPORTED_VERSIONS,
    UpdatePushRequest,
    decode_frame,
    decode_message,
    error_frame,
)
from repro.core.proofs import QueryResponse
from repro.errors import (
    GraphError,
    ProtocolError,
    ReproError,
    ServiceError,
    UnsupportedVersionError,
)
from repro.service.metrics import (
    MetricsSnapshot,
    ServerMetrics,
    merge_snapshots,
)
from repro.shard.manifest import ShardManifest
from repro.shard.stitch import CompositeResponse, CompositeSegment
from repro.shortestpath.kernel import indexed_shortest_path

#: Route plans (the segment split of one pair) kept hot in the router.
ROUTE_CACHE_SIZE = 4096


class _ShardFault(Exception):
    """Internal: one shard's leg of a fan-out failed (code + detail)."""

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(detail)
        self.code = code
        self.detail = detail


class ShardRouter:
    """Route framed queries across shard workers; stitch the proofs.

    ``transports[s]`` carries frames to shard *s*'s worker (anything
    with ``roundtrip(bytes) -> bytes``, e.g.
    :class:`~repro.api.transport.PooledHttpTransport` — the router
    serves from a threaded frontend, so per-shard transports must be
    thread-safe).  ``routing_graph`` is the full graph the manifest
    partitions; it powers planning only.  ``manifest_bytes`` should be
    the owner-produced encoding when available so clients get the
    signed bytes verbatim.
    """

    def __init__(self, manifest: ShardManifest, transports,
                 routing_graph, *, manifest_bytes: "bytes | None" = None,
                 accept_versions=SUPPORTED_VERSIONS) -> None:
        transports = list(transports)
        if len(transports) != manifest.num_shards:
            raise ServiceError(
                f"manifest names {manifest.num_shards} shards but "
                f"{len(transports)} worker transports were given"
            )
        self.manifest = manifest
        self.manifest_bytes = (manifest.encode() if manifest_bytes is None
                               else bytes(manifest_bytes))
        self.transports = transports
        self.accept_versions = tuple(accept_versions)
        self.metrics = ServerMetrics()
        self._index = routing_graph.to_index()
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, 2 * len(transports)),
            thread_name_prefix="shard-router",
        )
        self._route_lock = threading.Lock()
        self._route_cache: "OrderedDict[tuple, tuple]" = OrderedDict()

    def close(self) -> None:
        """Release the fan-out pool (transports are the caller's)."""
        self._executor.shutdown(wait=False)

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- framed entry point (mirrors Dispatcher.dispatch) ---------------
    def dispatch(self, frame_bytes: bytes) -> bytes:
        """Handle one request frame; always returns a reply frame."""
        try:
            frame = decode_frame(frame_bytes,
                                 accept_versions=self.accept_versions)
        except UnsupportedVersionError as exc:
            return error_frame(codes.E_UNSUPPORTED_VERSION, str(exc))
        except ProtocolError as exc:
            return error_frame(codes.E_MALFORMED_FRAME, str(exc))
        try:
            message = decode_message(frame)
        except ProtocolError as exc:
            code = (codes.E_UNKNOWN_MESSAGE if "unknown message type" in str(exc)
                    else codes.E_MALFORMED_FRAME)
            return error_frame(code, str(exc), version=frame.version)
        try:
            reply = self.handle(message)
        except ReproError as exc:
            reply = ErrorMessage(codes.E_BAD_REQUEST, str(exc))
        except Exception as exc:  # noqa: BLE001 — a router must not crash
            reply = ErrorMessage(codes.E_INTERNAL,
                                 f"{type(exc).__name__}: {exc}")
        return reply.to_frame(version=frame.version)

    def handle(self, message) -> Message:
        """Dispatch one decoded message to its handler; returns a reply."""
        handler = self._HANDLERS.get(type(message))
        if handler is None:
            return ErrorMessage(
                codes.E_UNKNOWN_MESSAGE,
                f"{type(message).__name__} is not a request",
            )
        return handler(self, message)

    # -- trivial handlers -----------------------------------------------
    def _handle_hello(self, message: HelloRequest):
        shared = [v for v in message.versions if v in self.accept_versions]
        if not shared:
            return ErrorMessage(
                codes.E_UNSUPPORTED_VERSION,
                f"no shared protocol version: client speaks "
                f"{sorted(message.versions)}, router accepts "
                f"{sorted(self.accept_versions)}",
            )
        return HelloReply(
            version=max(shared),
            method=self.manifest.method,
            descriptor_version=self.manifest.version,
        )

    def _handle_manifest(self, message: ManifestRequest):
        return ManifestReply(self.manifest_bytes)

    def _handle_descriptor(self, message: DescriptorRequest):
        return ErrorMessage(
            codes.E_BAD_REQUEST,
            "a shard router serves no single descriptor; fetch the shard "
            "manifest instead (MSG_GET_MANIFEST)",
        )

    def _handle_updates(self, message: UpdatePushRequest):
        return ErrorMessage(
            codes.E_UPDATES_DISABLED,
            "the router holds no signing key; push updates to the owner "
            "pipeline, which republishes per-shard artifacts",
        )

    def _handle_metrics(self, message: MetricsRequest):
        snapshot = self.metrics.snapshot()
        return MetricsReply(
            requests=snapshot.requests,
            elapsed_seconds=snapshot.elapsed_seconds,
            cache_hits=snapshot.cache_hits,
            cache_misses=snapshot.cache_misses,
            proof_bytes=snapshot.proof_bytes,
            p50_ms=snapshot.p50_ms,
            p95_ms=snapshot.p95_ms,
            updates=snapshot.updates,
            update_seconds=snapshot.update_seconds,
            cache_evictions=snapshot.cache_evictions,
            cache_invalidations=snapshot.cache_invalidations,
            cache_entries=snapshot.cache_entries,
            cache_capacity=snapshot.cache_capacity,
            p99_ms=snapshot.p99_ms,
        )

    # -- query routing --------------------------------------------------
    def _handle_query(self, message: QueryRequest):
        start = time.perf_counter()
        reply = self._route_query(message.source, message.target)
        elapsed = time.perf_counter() - start
        if isinstance(reply, QueryReply):
            served = len(reply.composite or reply.response_bytes)
            self.metrics.record(elapsed, served, cached=reply.cached)
        else:
            self.metrics.record(elapsed, 0, cached=False)
        return reply

    def _handle_batch(self, message: BatchQueryRequest):
        # Pairs are routed independently; cross-shard slots carry
        # composite bytes and are indexed in ``composite_slots``.  The
        # shared-multiproof ask cannot span shard roots, so the router
        # always falls back to the per-item layout — the documented
        # contract for servers that cannot share one proof.
        start = time.perf_counter()
        items = []
        composite_slots = []
        served_bytes = 0
        for index, (source, target) in enumerate(message.pairs):
            reply = self._route_query(int(source), int(target))
            if isinstance(reply, ErrorMessage):
                items.append(BatchItem(None, False, reply.code, reply.detail))
                continue
            if reply.composite:
                composite_slots.append(index)
                items.append(BatchItem(reply.composite, reply.cached))
                served_bytes += len(reply.composite)
            else:
                items.append(BatchItem(reply.response_bytes, reply.cached))
                served_bytes += len(reply.response_bytes)
        count = max(1, len(message.pairs))
        per_query = (time.perf_counter() - start) / count
        for item in items:
            self.metrics.record(per_query, len(item.response_bytes or b""),
                                cached=item.cached)
        return BatchQueryReply(tuple(items),
                               composite_slots=tuple(composite_slots))

    def _plan(self, source: int, target: int) -> tuple:
        """The segment split for one pair: ``((shard, s, t), ...)``.

        Segments follow the *global* shortest path, so a pair whose
        endpoints share a shard but whose optimal route cuts through a
        neighbour still fans out — proxying it whole would let the
        shard answer with an honest but globally suboptimal path.
        """
        key = (source, target)
        with self._route_lock:
            cached = self._route_cache.get(key)
            if cached is not None:
                self._route_cache.move_to_end(key)
                return cached
        path = indexed_shortest_path(self._index, source, target)
        owners = []
        for node_id in path.nodes:
            shard_id = self.manifest.shard_of(node_id)
            if shard_id is None:
                raise _ShardFault(
                    codes.E_QUERY_FAILED,
                    f"node {node_id} is outside the shard manifest",
                )
            owners.append(shard_id)
        segments = []
        seg_start = 0
        for position in range(1, len(path.nodes)):
            if owners[position] != owners[position - 1]:
                segments.append((owners[seg_start],
                                 path.nodes[seg_start],
                                 path.nodes[position]))
                seg_start = position
        segments.append((owners[seg_start], path.nodes[seg_start],
                         path.nodes[-1]))
        plan = tuple(segments)
        with self._route_lock:
            self._route_cache[key] = plan
            if len(self._route_cache) > ROUTE_CACHE_SIZE:
                self._route_cache.popitem(last=False)
        return plan

    def _route_query(self, source: int, target: int) -> Message:
        """Answer one pair: a proxied or stitched :class:`QueryReply`,
        or an :class:`ErrorMessage`."""
        try:
            plan = self._plan(source, target)
        except _ShardFault as fault:
            return ErrorMessage(fault.code, fault.detail)
        except GraphError as exc:
            return ErrorMessage(codes.E_QUERY_FAILED, str(exc))
        if len(plan) == 1:
            shard_id = plan[0][0]
            try:
                return self._ask_shard(shard_id, source, target)
            except _ShardFault as fault:
                return ErrorMessage(fault.code, fault.detail)
        futures = [
            self._executor.submit(self._ask_shard, shard_id, s, t)
            for shard_id, s, t in plan
        ]
        replies = []
        fault: "_ShardFault | None" = None
        for future in futures:
            try:
                replies.append(future.result())
            except _ShardFault as exc:
                fault = fault or exc
                replies.append(None)
        if fault is not None:
            return ErrorMessage(fault.code, fault.detail)
        segments = []
        stitched: "list[int]" = []
        total = 0.0
        for (shard_id, _, _), reply in zip(plan, replies):
            try:
                response = QueryResponse.decode(reply.response_bytes)
            except ReproError as exc:
                return ErrorMessage(
                    codes.E_SHARD_UNAVAILABLE,
                    f"shard {shard_id} returned an undecodable response: {exc}",
                )
            segments.append(CompositeSegment(shard_id, reply.response_bytes))
            # The composite claims what the shards actually proved:
            # under equal-cost ties a shard may pick a different (but
            # equally short) segment path than the router's plan, so
            # the claim concatenates the answers, not the plan.
            stitched.extend(response.path_nodes if not stitched
                            else response.path_nodes[1:])
            total += response.path_cost
        composite = CompositeResponse(source, target, tuple(stitched),
                                      total, tuple(segments))
        cached = all(reply.cached for reply in replies)
        return QueryReply(b"", cached=cached, composite=composite.encode())

    def _ask_shard(self, shard_id: int, source: int, target: int) -> QueryReply:
        """One segment query against one worker (raises ``_ShardFault``)."""
        frame = QueryRequest(source, target).to_frame()
        transport = self.transports[shard_id]
        roundtrip = getattr(transport, "roundtrip", transport)
        try:
            reply_frame = roundtrip(frame)
            message = decode_message(decode_frame(reply_frame))
        except (OSError, ProtocolError) as exc:
            raise _ShardFault(
                codes.E_SHARD_UNAVAILABLE,
                f"shard {shard_id} worker unreachable or broken: {exc}",
            ) from exc
        if isinstance(message, ErrorMessage):
            raise _ShardFault(
                codes.E_QUERY_FAILED,
                f"shard {shard_id}: {message.code}: {message.detail}",
            )
        if not isinstance(message, QueryReply):
            raise _ShardFault(
                codes.E_SHARD_UNAVAILABLE,
                f"shard {shard_id} answered with "
                f"{type(message).__name__}, expected QueryReply",
            )
        return message

    # -- shard metric aggregation (GET /metrics) ------------------------
    def shard_snapshots(self) -> "list[MetricsSnapshot | None]":
        """Each worker's current window, labeled ``shard<i>``.

        A worker that cannot be reached (or answers garbage) yields
        ``None`` — the aggregate below stays the honest fleet view of
        the survivors.
        """
        def fetch(shard_id: int) -> "MetricsSnapshot | None":
            transport = self.transports[shard_id]
            roundtrip = getattr(transport, "roundtrip", transport)
            try:
                frame = roundtrip(MetricsRequest().to_frame())
                message = decode_message(decode_frame(frame))
            except (OSError, ProtocolError):
                return None
            if not isinstance(message, MetricsReply):
                return None
            return MetricsSnapshot(
                requests=message.requests,
                elapsed_seconds=message.elapsed_seconds,
                cache_hits=message.cache_hits,
                cache_misses=message.cache_misses,
                proof_bytes=message.proof_bytes,
                p50_ms=message.p50_ms,
                p95_ms=message.p95_ms,
                updates=message.updates,
                update_seconds=message.update_seconds,
                cache_evictions=message.cache_evictions,
                cache_invalidations=message.cache_invalidations,
                cache_entries=message.cache_entries,
                cache_capacity=message.cache_capacity,
                p99_ms=message.p99_ms,
                phase=f"shard{shard_id}",
            )

        return list(self._executor.map(fetch, range(len(self.transports))))

    def metrics_json(self) -> dict:
        """Router window + per-shard windows + fleet merge, JSON-ready.

        This is what ``GET /metrics`` serves when the HTTP frontend
        fronts a router: the top-level keys are the router's own window
        (every routed query, fan-out latency included), ``shards`` the
        per-worker windows labeled ``shard<i>`` (``null`` for a worker
        that could not be scraped), and ``fleet`` their merge under the
        shard-label consensus rule of
        :func:`~repro.service.metrics.merge_snapshots`.
        """
        record = self.metrics.snapshot().as_dict()
        record["phases"] = [
            phase.as_dict() for phase in self.metrics.phases
        ]
        shards = self.shard_snapshots()
        record["shards"] = [
            None if snapshot is None else snapshot.as_dict()
            for snapshot in shards
        ]
        record["fleet"] = merge_snapshots(shards).as_dict()
        return record

    _HANDLERS = {
        HelloRequest: _handle_hello,
        QueryRequest: _handle_query,
        BatchQueryRequest: _handle_batch,
        DescriptorRequest: _handle_descriptor,
        ManifestRequest: _handle_manifest,
        UpdatePushRequest: _handle_updates,
        MetricsRequest: _handle_metrics,
    }
