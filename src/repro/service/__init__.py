"""Proof-serving layer: a long-lived provider for heavy traffic.

The paper's three-party model assumes a provider that answers many
clients for a long time; this package is that provider as a subsystem.
:class:`ProofServer` wraps any built
:class:`~repro.core.method.VerificationMethod` behind a request/response
API with an LRU proof cache (:class:`ProofCache`), combined-cover batch
coalescing for DIJ/LDM bursts, a thread-pool concurrent mode, and
serving metrics (:class:`ServerMetrics`).

Typical use::

    from repro import DataOwner, ProofServer

    owner = DataOwner(graph)
    server = ProofServer(owner.publish("DIJ"), cache_size=4096)
    served = server.answer(vs, vt)
    print(server.snapshot().qps)
"""

from repro.service.aio import AsyncProofHttpServer
from repro.service.cache import CacheEntry, CacheStats, ProofCache
from repro.service.http import ProofHttpServer
from repro.service.metrics import (
    MetricsSnapshot,
    ServerMetrics,
    merge_snapshots,
    percentile,
)
from repro.service.server import (
    BurstResult,
    ProofRequest,
    ProofServer,
    ServedResponse,
    UpdateRequest,
)
from repro.service.router import ShardRouter
from repro.service.sync import ReadWriteLock
from repro.service.workers import WorkerPool

__all__ = [
    "ProofServer",
    "ProofHttpServer",
    "AsyncProofHttpServer",
    "ProofRequest",
    "UpdateRequest",
    "ServedResponse",
    "BurstResult",
    "ReadWriteLock",
    "ProofCache",
    "CacheEntry",
    "CacheStats",
    "ServerMetrics",
    "MetricsSnapshot",
    "WorkerPool",
    "ShardRouter",
    "merge_snapshots",
    "percentile",
]
