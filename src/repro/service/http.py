"""Stdlib HTTP frontend: protocol frames over POST.

The wire contract is deliberately minimal so that any HTTP stack can
implement it:

* ``POST /rpc`` — body is one request frame, response body is one
  reply frame (``application/octet-stream``, status 200 even for
  protocol-level errors: those ride *inside* the frame, typed by
  :mod:`repro.api.codes`);
* ``GET /healthz`` — liveness probe, returns ``ok``;
* ``GET /metrics`` — the current metrics window as a JSON object
  (served when the dispatcher offers ``metrics_json()``; same keys as
  the METRICS wire frame, for scrapers that speak HTTP but not RSPV).

Concurrency comes from ``ThreadingHTTPServer`` (a thread per request)
over the dispatcher's :class:`~repro.service.server.ProofServer`, whose
cache, metrics and update gate are already thread-safe — the frontend
adds no locking of its own.  The server binds ``port=0`` to an
ephemeral port, which is what the tests, the load tester and the CI
smoke job use to avoid port collisions.

This module imports nothing above the error layer: it serves whatever
object offers ``dispatch(bytes) -> bytes``, keeping the frontend a pure
transport.
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ServiceError

#: Largest request body the frontend will read, in bytes.  Frames are
#: tiny (requests are a few dozen bytes; update batches a few KB), so
#: anything huge is garbage or abuse — reject before allocating.
MAX_REQUEST_BYTES = 4 * 1024 * 1024


class _FrameHandler(BaseHTTPRequestHandler):
    """One-endpoint handler; the server instance carries the dispatcher."""

    server_version = "repro-spv/1"
    protocol_version = "HTTP/1.1"

    def _send(self, status: int, body: bytes,
              content_type: str = "application/octet-stream") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        if self.path == "/healthz":
            self._send(200, b"ok", "text/plain")
        elif self.path == "/metrics":
            metrics_json = getattr(self.server.dispatcher, "metrics_json", None)
            if metrics_json is None:
                self._send(404, b"not found", "text/plain")
                return
            body = json.dumps(metrics_json(), sort_keys=True).encode("utf-8")
            self._send(200, body, "application/json")
        else:
            self._send(404, b"not found", "text/plain")

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        if self.path != "/rpc":
            self._send(404, b"not found", "text/plain")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send(411, b"length required", "text/plain")
            return
        if length <= 0:
            self._send(411, b"length required", "text/plain")
            return
        if length > MAX_REQUEST_BYTES:
            self._send(413, b"request too large", "text/plain")
            return
        frame = self.rfile.read(length)
        # The dispatcher never raises: malformed frames come back as
        # typed error frames, so HTTP status stays 200 end to end.
        self._send(200, self.server.dispatcher.dispatch(frame))

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Per-request stderr logging off by default (serving hot path)."""


class _ReusePortHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that joins an ``SO_REUSEPORT`` listener group.

    Several processes binding the same port this way have the kernel
    load-balance incoming connections across them — the pre-forked
    multi-worker serving mode (:mod:`repro.service.workers`).
    """

    def server_bind(self) -> None:
        if not hasattr(socket, "SO_REUSEPORT"):
            raise ServiceError(
                "this platform has no SO_REUSEPORT; multi-worker serving "
                "needs one listening socket per process on a shared port"
            )
        self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()


class ProofHttpServer:
    """A threaded HTTP frontend around a frame dispatcher.

    >>> server = ProofHttpServer(dispatcher, port=0)     # doctest: +SKIP
    >>> with server:                                     # doctest: +SKIP
    ...     client = RemoteClient(HttpTransport(server.url), pk.verify)
    ...     client.query(3, 9).ok

    ``start()`` serves from a daemon thread (the embedded mode used by
    tests and the load tester); :meth:`serve_forever` blocks (the CLI
    mode).  Either way :meth:`close` shuts the listener down.
    ``reuse_port=True`` joins an ``SO_REUSEPORT`` group so sibling
    worker processes can share the port.
    """

    def __init__(self, dispatcher, *, host: str = "127.0.0.1",
                 port: int = 0, reuse_port: bool = False) -> None:
        if not hasattr(dispatcher, "dispatch"):
            raise ServiceError(
                f"dispatcher must offer dispatch(bytes) -> bytes, "
                f"got {type(dispatcher).__name__}"
            )
        self.dispatcher = dispatcher
        server_cls = _ReusePortHTTPServer if reuse_port else ThreadingHTTPServer
        self._httpd = server_cls((host, port), _FrameHandler)
        self._httpd.dispatcher = dispatcher
        self._httpd.daemon_threads = True
        self._thread: "threading.Thread | None" = None
        self._served = False

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """The bound interface."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL for :class:`~repro.api.transport.HttpTransport`."""
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def start(self) -> "ProofHttpServer":
        """Serve from a background daemon thread; returns ``self``."""
        if self._thread is not None:
            raise ServiceError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-http-{self.port}",
            daemon=True,
        )
        self._served = True
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (CLI mode)."""
        self._served = True
        self._httpd.serve_forever()

    def close(self) -> None:
        """Stop serving and release the listening socket."""
        if self._served:
            # shutdown() waits on the serve_forever loop's exit event,
            # which only exists once a loop has run; calling it on a
            # never-served instance would block forever.
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "ProofHttpServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
