"""Stdlib HTTP frontend: protocol frames over POST.

The wire contract is deliberately minimal so that any HTTP stack can
implement it:

* ``POST /rpc`` — body is one request frame, response body is one
  reply frame (``application/octet-stream``, status 200 even for
  protocol-level errors: those ride *inside* the frame, typed by
  :mod:`repro.api.codes`);
* ``GET /healthz`` — liveness probe, returns ``ok``;
* ``GET /metrics`` — the current metrics window as a JSON object
  (served when the dispatcher offers ``metrics_json()``; same keys as
  the METRICS wire frame, for scrapers that speak HTTP but not RSPV).

Concurrency comes from ``ThreadingHTTPServer`` (a thread per request)
over the dispatcher's :class:`~repro.service.server.ProofServer`, whose
cache, metrics and update gate are already thread-safe — the frontend
adds no locking of its own.  The server binds ``port=0`` to an
ephemeral port, which is what the tests, the load tester and the CI
smoke job use to avoid port collisions.

This module imports nothing of the serving stack (only the error layer
and the envelope's typed error frames): it serves whatever object
offers ``dispatch(bytes) -> bytes``, keeping the frontend a pure
transport.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.api import codes
from repro.api.envelope import error_frame
from repro.errors import ServiceError

#: Largest request body the frontend will read, in bytes.  Frames are
#: tiny (requests are a few dozen bytes; update batches a few KB), so
#: anything huge is garbage or abuse — reject before allocating.
MAX_REQUEST_BYTES = 4 * 1024 * 1024

#: Per-connection socket timeout: the longest a handler thread waits
#: for the next request line or the rest of a body.  Long-lived
#: keep-alive clients send within milliseconds; anything slower is idle
#: or a slow-loris, and either way the thread must come back.
DEFAULT_HANDLER_TIMEOUT = 30.0

#: Requests served per connection before the server closes it
#: (``Connection: close``).  Bounding keep-alive bounds how long any
#: one client can monopolize a handler thread; well-behaved clients
#: (:class:`~repro.api.transport.HttpTransport`) redial transparently.
DEFAULT_MAX_KEEPALIVE_REQUESTS = 1000

#: How long :meth:`ProofHttpServer.close` waits for requests that are
#: already being handled to finish before giving up on them.  Idle
#: keep-alive connections are *not* waited for — only connections whose
#: request line has arrived and whose response is still being produced
#: or written.
DEFAULT_DRAIN_TIMEOUT = 5.0


def connectable_host(bound_host: str) -> str:
    """A host clients can dial, given the interface the server bound.

    Binding the wildcard address (``0.0.0.0``, ``::``) listens on every
    interface, but *connecting* to the wildcard is at best
    platform-dependent and at worst a refused connection — an URL built
    from it is unusable.  Loopback is the one address guaranteed to
    reach a wildcard listener, so that is what client-facing accessors
    advertise.
    """
    if bound_host in ("", "0.0.0.0"):
        return "127.0.0.1"
    if bound_host in ("::", "0:0:0:0:0:0:0:0"):
        return "::1"
    return bound_host


def format_netloc(host: str, port: int) -> str:
    """``host:port`` with IPv6 literals bracketed, as URLs require."""
    if ":" in host:
        return f"[{host}]:{port}"
    return f"{host}:{port}"


class _FrameHandler(BaseHTTPRequestHandler):
    """One-endpoint handler; the server instance carries the dispatcher."""

    server_version = "repro-spv/1"
    protocol_version = "HTTP/1.1"
    #: Reply headers and body are two writes; without TCP_NODELAY Nagle
    #: serializes them against the client's delayed ACK (~40ms/request
    #: on a kept-alive connection).  socketserver applies this in setup.
    disable_nagle_algorithm = True

    def setup(self) -> None:
        # ``timeout`` is applied to the connection socket by the stdlib
        # setup; it covers both the wait for the next request line on a
        # kept-alive connection and every body read below, so no client
        # can pin this thread longer than the configured window.
        self.timeout = getattr(self.server, "handler_timeout",
                               DEFAULT_HANDLER_TIMEOUT)
        self._requests_served = 0
        self._inflight = False
        super().setup()

    # -- in-flight accounting (the shutdown drain) ---------------------
    # Handler threads are daemons, so ``server_close()`` does not join
    # them: without accounting, ``close()`` could return (and the
    # process exit) while a response is mid-write on a pipelined
    # connection.  A handler counts as in-flight from the moment a
    # request line has arrived until its response is flushed; idle
    # keep-alive waits are deliberately *not* counted, so shutdown never
    # waits on a client that is merely holding a connection open.
    def parse_request(self) -> bool:
        cv = getattr(self.server, "inflight_cv", None)
        if cv is not None and not self._inflight:
            with cv:
                self.server.inflight_count += 1
            self._inflight = True
        return super().parse_request()

    def handle_one_request(self) -> None:
        try:
            super().handle_one_request()
        finally:
            if self._inflight:
                self._inflight = False
                cv = self.server.inflight_cv
                with cv:
                    self.server.inflight_count -= 1
                    cv.notify_all()

    def _send(self, status: int, body: bytes,
              content_type: str = "application/octet-stream") -> None:
        self._requests_served += 1
        budget = getattr(self.server, "max_keepalive_requests",
                         DEFAULT_MAX_KEEPALIVE_REQUESTS)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if budget and self._requests_served >= budget:
            # Announce the close so a persistent client redials rather
            # than tripping its stale-connection retry.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        if self.path == "/healthz":
            self._send(200, b"ok", "text/plain")
        elif self.path == "/metrics":
            metrics_json = getattr(self.server.dispatcher, "metrics_json", None)
            if metrics_json is None:
                self._send(404, b"not found", "text/plain")
                return
            body = json.dumps(metrics_json(), sort_keys=True).encode("utf-8")
            self._send(200, body, "application/json")
        else:
            self._send(404, b"not found", "text/plain")

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        if self.path != "/rpc":
            self._send(404, b"not found", "text/plain")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send(411, b"length required", "text/plain")
            return
        if length <= 0:
            self._send(411, b"length required", "text/plain")
            return
        if length > MAX_REQUEST_BYTES:
            self._send(413, b"request too large", "text/plain")
            return
        try:
            frame = self.rfile.read(length)
        except (TimeoutError, socket.timeout):
            # A client advertised more body than it sent within the
            # handler timeout (slow-loris or a died peer).  Answer with
            # a typed error frame on the off chance it is listening,
            # then drop the connection — its byte stream is desynced.
            self._send_timeout(
                f"request body stalled: {length} bytes promised"
            )
            return
        if len(frame) < length:
            # The peer closed early; the stream is short, not stalled.
            self._send_timeout(
                f"short request body: {len(frame)} of {length} bytes"
            )
            return
        # The dispatcher never raises: malformed frames come back as
        # typed error frames, so HTTP status stays 200 end to end.
        self._send(200, self.server.dispatcher.dispatch(frame))

    def _send_timeout(self, detail: str) -> None:
        try:
            self._send(200, error_frame(codes.E_REQUEST_TIMEOUT, detail))
            self.wfile.flush()
        except OSError:
            # The peer that starved us is often also gone; there is
            # nobody left to read the error frame.
            pass
        self.close_connection = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Per-request stderr logging off by default (serving hot path)."""


class _FrameHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer with a listen backlog sized for storms.

    The socketserver default of 5 pending connections predates
    persistent high-concurrency clients: a few hundred keep-alive
    clients dialing at once overflow it, their SYNs get dropped, and
    the stragglers sit in multi-second kernel retransmit backoff before
    the server ever sees them.  Match the async frontend's backlog so
    the two are comparable connection-storm for connection-storm.
    """

    request_queue_size = 1024


class _ReusePortHTTPServer(_FrameHTTPServer):
    """Frame server that joins an ``SO_REUSEPORT`` listener group.

    Several processes binding the same port this way have the kernel
    load-balance incoming connections across them — the pre-forked
    multi-worker serving mode (:mod:`repro.service.workers`).
    """

    def server_bind(self) -> None:
        if not hasattr(socket, "SO_REUSEPORT"):
            raise ServiceError(
                "this platform has no SO_REUSEPORT; multi-worker serving "
                "needs one listening socket per process on a shared port"
            )
        self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()


class ProofHttpServer:
    """A threaded HTTP frontend around a frame dispatcher.

    >>> server = ProofHttpServer(dispatcher, port=0)     # doctest: +SKIP
    >>> with server:                                     # doctest: +SKIP
    ...     client = RemoteClient(HttpTransport(server.url), pk.verify)
    ...     client.query(3, 9).ok

    ``start()`` serves from a daemon thread (the embedded mode used by
    tests and the load tester); :meth:`serve_forever` blocks (the CLI
    mode).  Either way :meth:`close` shuts the listener down.
    ``reuse_port=True`` joins an ``SO_REUSEPORT`` group so sibling
    worker processes can share the port.

    Long-lived connections are bounded on two axes:
    ``handler_timeout`` caps how long one connection may stall its
    handler thread (between requests or mid-body), and
    ``max_keepalive_requests`` caps how many requests one connection
    may issue before being closed (``0`` disables the bound).
    """

    def __init__(self, dispatcher, *, host: str = "127.0.0.1",
                 port: int = 0, reuse_port: bool = False,
                 handler_timeout: float = DEFAULT_HANDLER_TIMEOUT,
                 max_keepalive_requests: int = DEFAULT_MAX_KEEPALIVE_REQUESTS,
                 drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
                 ) -> None:
        if not hasattr(dispatcher, "dispatch"):
            raise ServiceError(
                f"dispatcher must offer dispatch(bytes) -> bytes, "
                f"got {type(dispatcher).__name__}"
            )
        if handler_timeout <= 0:
            raise ServiceError(
                f"handler_timeout must be positive, got {handler_timeout}"
            )
        if max_keepalive_requests < 0:
            raise ServiceError(
                f"max_keepalive_requests must be >= 0, got "
                f"{max_keepalive_requests}"
            )
        if drain_timeout < 0:
            raise ServiceError(
                f"drain_timeout must be >= 0, got {drain_timeout}"
            )
        self.dispatcher = dispatcher
        self.drain_timeout = drain_timeout
        server_cls = _ReusePortHTTPServer if reuse_port else _FrameHTTPServer
        self._httpd = server_cls((host, port), _FrameHandler)
        self._httpd.dispatcher = dispatcher
        self._httpd.daemon_threads = True
        self._httpd.handler_timeout = handler_timeout
        self._httpd.max_keepalive_requests = max_keepalive_requests
        self._httpd.inflight_cv = threading.Condition()
        self._httpd.inflight_count = 0
        self._thread: "threading.Thread | None" = None
        self._served = False

    # ------------------------------------------------------------------
    @property
    def bound_host(self) -> str:
        """The interface actually bound (may be a wildcard)."""
        return self._httpd.server_address[0]

    @property
    def host(self) -> str:
        """A host clients can dial (wildcard binds resolve to loopback)."""
        return connectable_host(self.bound_host)

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL for :class:`~repro.api.transport.HttpTransport`.

        Always connectable: wildcard binds advertise loopback and IPv6
        hosts are bracketed, so the value can be pasted into a client
        (or a browser) verbatim.
        """
        return f"http://{format_netloc(self.host, self.port)}"

    # ------------------------------------------------------------------
    def start(self) -> "ProofHttpServer":
        """Serve from a background daemon thread; returns ``self``."""
        if self._thread is not None:
            raise ServiceError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-http-{self.port}",
            daemon=True,
        )
        self._served = True
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (CLI mode)."""
        self._served = True
        self._httpd.serve_forever()

    def close(self) -> None:
        """Stop serving and release the listening socket.

        Requests whose handling has already begun are *drained*: close
        waits (up to ``drain_timeout``) until their responses have been
        flushed, so a client that was mid-exchange on a pipelined
        connection gets its reply instead of an aborted socket.  Idle
        keep-alive connections are not waited for.
        """
        if self._served:
            # shutdown() waits on the serve_forever loop's exit event,
            # which only exists once a loop has run; calling it on a
            # never-served instance would block forever.
            self._httpd.shutdown()
            # Handler threads are daemons (server_close() will not join
            # them), so without this wait an in-flight response could be
            # severed by process exit right after close() returns.
            cv = self._httpd.inflight_cv
            deadline = time.monotonic() + self.drain_timeout
            with cv:
                while self._httpd.inflight_count > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not cv.wait(timeout=remaining):
                        break
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "ProofHttpServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
