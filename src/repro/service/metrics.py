"""Serving metrics: QPS, latency percentiles, hit rate, bytes served.

:class:`ServerMetrics` is the running (thread-safe) accumulator owned by
a :class:`~repro.service.server.ProofServer`; :class:`MetricsSnapshot`
is the immutable read the CLI and benchmarks consume.  ``reset()``
starts a fresh measurement window, which is how the load tester gets
separate cold-cache and warm-cache numbers from one server.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass


def percentile(values: "list[float]", q: float) -> float:
    """The *q*-quantile (0 <= q <= 1) by the nearest-rank method.

    Nearest-rank keeps the result an actually-observed value, which is
    the honest choice for the small request counts of a test workload.
    Returns 0.0 for an empty list.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass(frozen=True)
class MetricsSnapshot:
    """One measurement window, frozen at :meth:`ServerMetrics.snapshot`.

    The ``cache_*`` counters mirror the proof cache's lifetime
    :class:`~repro.service.cache.CacheStats` (evictions under memory
    pressure, whole-cache invalidations after updates) plus its current
    occupancy — the capacity-tuning signals, surfaced here so the CLI,
    the METRICS wire frame and ``GET /metrics`` all report them without
    reaching into the cache object.
    """

    requests: int
    elapsed_seconds: float
    cache_hits: int
    cache_misses: int
    proof_bytes: int
    p50_ms: float
    p95_ms: float
    updates: int = 0
    update_seconds: float = 0.0
    cache_evictions: int = 0
    cache_invalidations: int = 0
    cache_entries: int = 0
    cache_capacity: int = 0
    p99_ms: float = 0.0
    #: Label of the phase window this snapshot froze ("" = unlabeled).
    phase: str = ""

    @property
    def qps(self) -> float:
        """Requests per second over the window."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.requests / self.elapsed_seconds

    @property
    def hit_rate(self) -> float:
        """Served-from-cache fraction (0.0 with no requests)."""
        return self.cache_hits / self.requests if self.requests else 0.0

    @property
    def proof_kbytes(self) -> float:
        """Total proof payload served, in KBytes."""
        return self.proof_bytes / 1024.0

    def as_dict(self) -> dict:
        """Flat record for JSON results logs."""
        return {
            "requests": self.requests,
            "elapsed_seconds": self.elapsed_seconds,
            "qps": self.qps,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "proof_bytes": self.proof_bytes,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "updates": self.updates,
            "update_seconds": self.update_seconds,
            "cache_evictions": self.cache_evictions,
            "cache_invalidations": self.cache_invalidations,
            "cache_entries": self.cache_entries,
            "cache_capacity": self.cache_capacity,
            "p99_ms": self.p99_ms,
            "phase": self.phase,
        }

    @property
    def update_ms_mean(self) -> float:
        """Mean owner-update latency over the window, in milliseconds."""
        if not self.updates:
            return 0.0
        return 1000.0 * self.update_seconds / self.updates


class ServerMetrics:
    """Thread-safe accumulator of per-request serving measurements.

    Besides the running window, the accumulator supports *phase
    windowing* for soak runs: :meth:`begin_phase` freezes the current
    window into the phase history and starts a fresh labeled one, so a
    warmup → steady → burst soak gets per-phase percentiles from one
    server without losing any earlier phase's numbers.  The history is
    read via :attr:`phases` and survives ``reset()`` unless the reset
    asks for ``phases=True``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._phase = ""
        self._phases: list[MetricsSnapshot] = []
        self.reset()

    def reset(self, *, phases: bool = False) -> None:
        """Start a new measurement window.

        The current window's label is kept (a reset inside a phase
        restarts that phase's window); pass ``phases=True`` to also drop
        the recorded phase history and the label.
        """
        with self._lock:
            self._started = time.perf_counter()
            self._latencies: list[float] = []
            self._hits = 0
            self._misses = 0
            self._bytes = 0
            self._updates = 0
            self._update_seconds = 0.0
            if phases:
                self._phase = ""
                self._phases = []

    # -- phase windowing ------------------------------------------------
    def begin_phase(self, name: str) -> None:
        """Close the current window into the history; open *name*.

        The closing window is recorded only if it saw any traffic (the
        idle gap between server start and the first phase is noise, not
        a phase).
        """
        self._cut_window(new_label=name)

    def end_phase(self) -> None:
        """Close the current phase back to an unlabeled window."""
        self._cut_window(new_label="")

    def _cut_window(self, *, new_label: str) -> None:
        with self._lock:
            closing = self._freeze_locked()
            if closing.requests or closing.updates:
                self._phases.append(closing)
            self._phase = new_label
            self._started = time.perf_counter()
            self._latencies = []
            self._hits = 0
            self._misses = 0
            self._bytes = 0
            self._updates = 0
            self._update_seconds = 0.0

    @property
    def phases(self) -> "tuple[MetricsSnapshot, ...]":
        """Closed phase windows, oldest first."""
        with self._lock:
            return tuple(self._phases)

    def record(self, latency_seconds: float, proof_bytes: int,
               *, cached: bool) -> None:
        """Record one served request."""
        with self._lock:
            self._latencies.append(latency_seconds)
            if cached:
                self._hits += 1
            else:
                self._misses += 1
            self._bytes += proof_bytes

    def record_update(self, seconds: float) -> None:
        """Record one applied owner update (re-auth latency included)."""
        with self._lock:
            self._updates += 1
            self._update_seconds += seconds

    def _freeze_locked(self) -> MetricsSnapshot:
        latencies = list(self._latencies)
        return MetricsSnapshot(
            requests=len(latencies),
            elapsed_seconds=time.perf_counter() - self._started,
            cache_hits=self._hits,
            cache_misses=self._misses,
            proof_bytes=self._bytes,
            p50_ms=percentile(latencies, 0.50) * 1000.0,
            p95_ms=percentile(latencies, 0.95) * 1000.0,
            updates=self._updates,
            update_seconds=self._update_seconds,
            p99_ms=percentile(latencies, 0.99) * 1000.0,
            phase=self._phase,
        )

    def _freeze(self) -> MetricsSnapshot:
        with self._lock:
            return self._freeze_locked()

    def snapshot(self, *, cache=None) -> MetricsSnapshot:
        """Freeze the current window (the window keeps accumulating).

        Pass the server's :class:`~repro.service.cache.ProofCache` to
        fold its lifetime eviction/invalidation counters and current
        occupancy into the snapshot (what
        :meth:`~repro.service.server.ProofServer.snapshot` does).
        """
        snapshot = self._freeze()
        if cache is not None:
            from dataclasses import replace

            snapshot = replace(
                snapshot,
                cache_evictions=cache.stats.evictions,
                cache_invalidations=cache.stats.invalidations,
                cache_entries=len(cache),
                cache_capacity=cache.capacity,
            )
        return snapshot


def merge_snapshots(
    snapshots: "list[MetricsSnapshot | None]",
    *,
    labels: "list[str] | None" = None,
) -> MetricsSnapshot:
    """Aggregate per-worker windows into one fleet view.

    Counters and byte totals sum; ``elapsed_seconds`` is the longest
    window (the workers ran concurrently, not back to back); latency
    percentiles are request-weighted means of the per-worker
    percentiles — an approximation (true fleet percentiles need the
    raw samples), good enough for the operator table it feeds.

    ``None`` entries are skipped: a worker that crashed mid-soak never
    reported a final window, and the survivors' aggregate is still the
    honest fleet view (the pool reports the crash separately).  The
    merged ``phase`` label is kept only when every surviving window
    agrees on it — mixed-phase merges are unlabeled.

    ``labels`` (parallel to *snapshots*) relabels each surviving window
    before the merge — how a shard router tags its workers' windows
    ``shard0..shardN`` so the consensus rule applies to shard identity:
    one shard's windows keep the label, a cross-shard fleet merge drops
    it.
    """
    if labels is not None:
        if len(labels) != len(snapshots):
            raise ValueError(
                f"{len(labels)} labels for {len(snapshots)} snapshots"
            )
        from dataclasses import replace

        snapshots = [
            None if s is None else replace(s, phase=label)
            for s, label in zip(snapshots, labels)
        ]
    snapshots = [s for s in snapshots if s is not None]
    if not snapshots:
        return MetricsSnapshot(0, 0.0, 0, 0, 0, 0.0, 0.0)
    requests = sum(s.requests for s in snapshots)

    def weighted(attribute: str) -> float:
        if not requests:
            return 0.0
        return sum(getattr(s, attribute) * s.requests
                   for s in snapshots) / requests

    labels = {s.phase for s in snapshots}
    return MetricsSnapshot(
        requests=requests,
        elapsed_seconds=max(s.elapsed_seconds for s in snapshots),
        cache_hits=sum(s.cache_hits for s in snapshots),
        cache_misses=sum(s.cache_misses for s in snapshots),
        proof_bytes=sum(s.proof_bytes for s in snapshots),
        p50_ms=weighted("p50_ms"),
        p95_ms=weighted("p95_ms"),
        updates=sum(s.updates for s in snapshots),
        update_seconds=sum(s.update_seconds for s in snapshots),
        cache_evictions=sum(s.cache_evictions for s in snapshots),
        cache_invalidations=sum(s.cache_invalidations for s in snapshots),
        cache_entries=sum(s.cache_entries for s in snapshots),
        cache_capacity=sum(s.cache_capacity for s in snapshots),
        p99_ms=weighted("p99_ms"),
        phase=labels.pop() if len(labels) == 1 else "",
    )
