"""Implementations of the five graph-node orderings.

Every ordering function takes a :class:`~repro.graph.graph.SpatialGraph`
and returns a permutation of its node ids as a list.  Determinism: ties
are always broken by ascending node id, and the random ordering is
seeded, so the owner and any auditor reproduce identical Merkle trees.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable

from repro.errors import GraphError
from repro.graph.graph import SpatialGraph


def random_order(graph: SpatialGraph, *, seed: int = 0) -> list[int]:
    """Seeded random permutation of the node ids."""
    ids = graph.node_ids()
    random.Random(seed).shuffle(ids)
    return ids


def bfs_order(graph: SpatialGraph, *, start: int | None = None) -> list[int]:
    """Breadth-first order; restarts at the smallest unvisited id per component."""
    order: list[int] = []
    visited: set[int] = set()
    ids = graph.node_ids()
    starts = [start] if start is not None else []
    starts.extend(ids)
    for root in starts:
        if root in visited:
            continue
        queue = deque([root])
        visited.add(root)
        while queue:
            u = queue.popleft()
            order.append(u)
            for v in sorted(graph.neighbors(u)):
                if v not in visited:
                    visited.add(v)
                    queue.append(v)
    return order


def dfs_order(graph: SpatialGraph, *, start: int | None = None) -> list[int]:
    """Depth-first (preorder) order; iterative, so deep chains are safe."""
    order: list[int] = []
    visited: set[int] = set()
    ids = graph.node_ids()
    starts = [start] if start is not None else []
    starts.extend(ids)
    for root in starts:
        if root in visited:
            continue
        stack = [root]
        while stack:
            u = stack.pop()
            if u in visited:
                continue
            visited.add(u)
            order.append(u)
            for v in sorted(graph.neighbors(u), reverse=True):
                if v not in visited:
                    stack.append(v)
    return order


def hilbert_index(x: int, y: int, order: int) -> int:
    """Distance along a Hilbert curve of 2^order x 2^order cells.

    Classic bit-interleaving walk (Hamilton's xy2d): at each scale the
    quadrant is identified and the coordinates are rotated/reflected
    into the canonical orientation.
    """
    rx = ry = 0
    d = 0
    s = 1 << (order - 1)
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant.
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s >>= 1
    return d


def hilbert_order(graph: SpatialGraph, *, order: int = 16) -> list[int]:
    """Sort nodes by Hilbert curve index of their coordinates.

    Vectorized Hamilton walk: all nodes advance through the bit scales
    together, so the cost is ``order`` NumPy passes instead of a Python
    loop per node.  Indices (and therefore the ordering, with ties
    broken by ascending id) match :func:`hilbert_index` exactly.
    """
    if graph.num_nodes == 0:
        return []
    import numpy as np

    min_x, min_y, max_x, max_y = graph.bounding_box()
    span = max(max_x - min_x, max_y - min_y) or 1.0
    scale = ((1 << order) - 1) / span

    ids = graph.node_ids()
    nodes = [graph.node(node_id) for node_id in ids]
    x = np.array([(node.x - min_x) * scale for node in nodes]).astype(np.int64)
    y = np.array([(node.y - min_y) * scale for node in nodes]).astype(np.int64)
    d = np.zeros(len(ids), dtype=np.int64)
    s = 1 << (order - 1)
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant (same branch structure as hilbert_index).
        flip = (ry == 0) & (rx == 1)
        x = np.where(flip, s - 1 - x, x)
        y = np.where(flip, s - 1 - y, y)
        swap = ry == 0
        x, y = np.where(swap, y, x), np.where(swap, x, y)
        s >>= 1
    # ids are ascending, so a stable sort on d breaks ties by id.
    return [ids[i] for i in np.argsort(d, kind="stable")]


def kd_order(graph: SpatialGraph) -> list[int]:
    """kd-tree order: recursive median splits, alternating axes.

    The left/right recursion emits a leaf ordering in which spatially
    close nodes land in the same subtree — the "spatial partitioning
    (kd-tree) ordering" of the paper.
    """
    ids = graph.node_ids()
    coords = {node_id: (graph.node(node_id).x, graph.node(node_id).y) for node_id in ids}
    order: list[int] = []
    # Explicit stack of (nodes, axis) to avoid recursion limits.
    stack: list[tuple[list[int], int]] = [(ids, 0)]
    while stack:
        bucket, axis = stack.pop()
        if len(bucket) <= 2:
            order.extend(sorted(bucket, key=lambda n: (coords[n][axis], n)))
            continue
        bucket.sort(key=lambda n: (coords[n][axis], n))
        mid = len(bucket) // 2
        # Push right first so the left half is processed first (preorder).
        stack.append((bucket[mid:], 1 - axis))
        stack.append((bucket[:mid], 1 - axis))
    return order


ORDERINGS: dict[str, Callable[..., list[int]]] = {
    "rand": random_order,
    "bfs": bfs_order,
    "dfs": dfs_order,
    "hbt": hilbert_order,
    "kd": kd_order,
}


def order_nodes(graph: SpatialGraph, ordering: str = "hbt", **kwargs) -> list[int]:
    """Order the graph's nodes by a named ordering (see :data:`ORDERINGS`)."""
    try:
        fn = ORDERINGS[ordering]
    except KeyError:
        raise GraphError(
            f"unknown ordering {ordering!r}; choose from {sorted(ORDERINGS)}"
        ) from None
    return fn(graph, **kwargs)
