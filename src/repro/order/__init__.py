"""Graph-node orderings for the Merkle tree leaf layout.

The size of the integrity proof ΓT depends on how well the leaf order
preserves network proximity (paper §III-B, Fig. 10).  Five orderings
are provided under the paper's names:

========  =========================================
``rand``  random permutation (worst case baseline)
``bfs``   breadth-first traversal order
``dfs``   depth-first traversal order
``hbt``   Hilbert space-filling curve on coordinates
``kd``    kd-tree (median split) leaf order
========  =========================================
"""

from repro.order.orderings import (
    ORDERINGS,
    bfs_order,
    dfs_order,
    hilbert_index,
    hilbert_order,
    kd_order,
    order_nodes,
    random_order,
)

__all__ = [
    "ORDERINGS",
    "order_nodes",
    "random_order",
    "bfs_order",
    "dfs_order",
    "hilbert_order",
    "hilbert_index",
    "kd_order",
]
