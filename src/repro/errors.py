"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Verification *failures* (an honest
"this proof does not check out") are reported as values, not exceptions
(see :class:`repro.core.framework.VerificationResult`); exceptions are
reserved for programming errors and malformed inputs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Invalid graph structure or graph operation."""


class NoPathError(GraphError):
    """Raised when no path exists between the queried nodes."""

    def __init__(self, source: int, target: int) -> None:
        super().__init__(f"no path from node {source} to node {target}")
        self.source = source
        self.target = target


class EncodingError(ReproError):
    """Malformed canonical encoding."""


class ProtocolError(EncodingError):
    """Malformed, truncated or otherwise invalid wire-protocol frame.

    Raised by the strict frame decoders in :mod:`repro.api.envelope`.
    Deriving from :class:`EncodingError` keeps the contract that no
    decoder in the package raises anything outside the typed hierarchy.
    """


class UnsupportedVersionError(ProtocolError):
    """A frame speaks a protocol version this endpoint does not accept."""

    def __init__(self, version: int, accepted) -> None:
        super().__init__(
            f"protocol version {version} not accepted (supported: "
            f"{sorted(accepted)})"
        )
        self.version = version
        self.accepted = tuple(accepted)


class MerkleError(ReproError):
    """Invalid Merkle tree operation or malformed Merkle proof."""


class CryptoError(ReproError):
    """Key generation / signing failure."""


class WorkloadError(ReproError):
    """Workload generation could not satisfy the request."""


class MethodError(ReproError):
    """Verification method misuse (e.g. querying before build)."""


class ServiceError(ReproError):
    """Proof-serving misuse (bad server configuration or request)."""


class ArtifactError(ReproError):
    """Invalid, corrupted or incompatible persisted artifact.

    Raised by the :mod:`repro.store` pack reader/writer and by the
    methods' ``load_state`` validation.  Artifacts cross machine
    boundaries (built on the signer box, served elsewhere), so loading
    is strict: truncation, bit flips, wrong format versions and
    inconsistent section shapes all surface as this one typed error —
    never as a raw ``struct.error`` / ``ValueError`` from the guts of
    the decoder.
    """
