"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Verification *failures* (an honest
"this proof does not check out") are reported as values, not exceptions
(see :class:`repro.core.framework.VerificationResult`); exceptions are
reserved for programming errors and malformed inputs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Invalid graph structure or graph operation."""


class NoPathError(GraphError):
    """Raised when no path exists between the queried nodes."""

    def __init__(self, source: int, target: int) -> None:
        super().__init__(f"no path from node {source} to node {target}")
        self.source = source
        self.target = target


class EncodingError(ReproError):
    """Malformed canonical encoding."""


class MerkleError(ReproError):
    """Invalid Merkle tree operation or malformed Merkle proof."""


class CryptoError(ReproError):
    """Key generation / signing failure."""


class WorkloadError(ReproError):
    """Workload generation could not satisfy the request."""


class MethodError(ReproError):
    """Verification method misuse (e.g. querying before build)."""


class ServiceError(ReproError):
    """Proof-serving misuse (bad server configuration or request)."""
