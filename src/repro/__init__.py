"""repro — authenticated shortest path verification.

A full reproduction of *"Efficient Verification of Shortest Path
Search via Authenticated Hints"* (Yiu, Lin, Mouratidis; ICDE 2010):
the three-party outsourcing framework, the four verification methods
(DIJ, FULL, LDM, HYP) and every substrate they rest on — Merkle
trees over graph-node orderings, pure-Python RSA, landmark vectors
with quantization/compression, and the HiTi grid hierarchy.

Quick start::

    from repro import DataOwner, ServiceProvider, Client
    from repro.graph import road_network

    graph = road_network(2000, seed=7)
    owner = DataOwner(graph)
    method = owner.publish("LDM", c=50)
    provider = ServiceProvider(method)
    client = Client(owner.signer.verify)

    vs, vt = graph.node_ids()[0], graph.node_ids()[-1]
    response = provider.answer(vs, vt)
    assert client.verify(vs, vt, response).ok
"""

from repro.api.client import RemoteClient, RemoteResult
from repro.api.dispatcher import Dispatcher
from repro.api.transport import HttpTransport, InProcessTransport
from repro.core import (
    Client,
    DataOwner,
    DijMethod,
    FullMethod,
    HypMethod,
    LdmMethod,
    METHODS,
    QueryResponse,
    ServiceProvider,
    UpdateReport,
    VerificationMethod,
    VerificationResult,
    get_method,
)
from repro.crypto import RsaSigner
from repro.graph import SpatialGraph, grid_network, road_network
from repro.service import (
    BurstResult,
    ProofCache,
    ProofHttpServer,
    ProofRequest,
    ProofServer,
    ServedResponse,
    ServerMetrics,
    ShardRouter,
    UpdateRequest,
)
from repro.shard import (
    CompositeResponse,
    ShardManifest,
    build_shards,
    load_manifest,
    save_manifest,
    verify_composite,
)
from repro.shortestpath import Path, dijkstra, shortest_path
from repro.store import load_method, save_method
from repro.workload import generate_workload, load_dataset

__version__ = "1.0.0"

__all__ = [
    "DataOwner",
    "ServiceProvider",
    "Client",
    "VerificationMethod",
    "VerificationResult",
    "QueryResponse",
    "METHODS",
    "get_method",
    "DijMethod",
    "FullMethod",
    "LdmMethod",
    "HypMethod",
    "RsaSigner",
    "ProofServer",
    "ProofHttpServer",
    "Dispatcher",
    "RemoteClient",
    "RemoteResult",
    "HttpTransport",
    "InProcessTransport",
    "ProofRequest",
    "UpdateRequest",
    "UpdateReport",
    "ProofCache",
    "ServedResponse",
    "BurstResult",
    "ServerMetrics",
    "SpatialGraph",
    "grid_network",
    "road_network",
    "Path",
    "dijkstra",
    "shortest_path",
    "generate_workload",
    "load_dataset",
    "save_method",
    "load_method",
    "ShardRouter",
    "ShardManifest",
    "CompositeResponse",
    "build_shards",
    "save_manifest",
    "load_manifest",
    "verify_composite",
    "__version__",
]
