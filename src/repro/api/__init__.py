"""Wire API: versioned envelopes, dispatch, transports, remote client.

This package is the system's protocol surface — how the three paper
roles interact once proofs cross a real trust boundary as bytes:

* :mod:`repro.api.codes` — the stable error taxonomy (verification
  reason codes + wire error codes), declared once;
* :mod:`repro.api.envelope` — framed request/response messages with a
  protocol-version handshake and strict, typed-error decoders;
* :mod:`repro.api.dispatcher` — the transport-neutral router turning
  request frames into :class:`~repro.service.server.ProofServer` calls;
* :mod:`repro.api.transport` — in-process and HTTP frame carriers;
* :mod:`repro.api.client` — :class:`RemoteClient`, which fetches the
  signed descriptor and proofs over the wire and verifies from bytes
  alone.

Only the dependency-light modules (``codes``, ``envelope``) load
eagerly; the serving-side names resolve lazily (PEP 562) so that core
modules can import the taxonomy without dragging in — or cycling with —
the serving stack.
"""

from repro.api import codes
from repro.api.envelope import (
    BatchItem,
    BatchQueryReply,
    BatchQueryRequest,
    DescriptorReply,
    DescriptorRequest,
    ErrorMessage,
    Frame,
    HelloReply,
    HelloRequest,
    MetricsReply,
    MetricsRequest,
    PROTOCOL_VERSION,
    QueryReply,
    QueryRequest,
    SUPPORTED_VERSIONS,
    UpdatePushRequest,
    UpdateReply,
    WireUpdate,
    decode_frame,
    decode_message,
    encode_frame,
    error_frame,
)

#: Lazily resolved exports and their home modules.
_LAZY = {
    "Dispatcher": "repro.api.dispatcher",
    "RemoteClient": "repro.api.client",
    "RemoteResult": "repro.api.client",
    "Transport": "repro.api.transport",
    "InProcessTransport": "repro.api.transport",
    "HttpTransport": "repro.api.transport",
    "PooledHttpTransport": "repro.api.transport",
    "AsyncTransport": "repro.api.transport",
}

__all__ = [
    "codes",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "Frame",
    "encode_frame",
    "decode_frame",
    "decode_message",
    "error_frame",
    "HelloRequest",
    "HelloReply",
    "QueryRequest",
    "QueryReply",
    "BatchQueryRequest",
    "BatchQueryReply",
    "BatchItem",
    "DescriptorRequest",
    "DescriptorReply",
    "UpdatePushRequest",
    "UpdateReply",
    "WireUpdate",
    "MetricsRequest",
    "MetricsReply",
    "ErrorMessage",
    *sorted(set(_LAZY)),
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache for subsequent lookups
    return value
