"""The stable error taxonomy shared by verification and the wire protocol.

Every machine-readable code the system emits is declared here, once:

* **verification reason codes** — the ``reason`` field of a
  :class:`~repro.core.framework.VerificationResult`.  Clients branch on
  these (retry? alarm? drop the provider?), so they are a compatibility
  surface: never rename one, only add.
* **wire error codes** — the ``code`` field of a protocol-level
  :class:`~repro.api.envelope.ErrorMessage`.  These describe transport
  and serving failures (a malformed frame, an unanswerable query), not
  proof verdicts.

``tests/api/test_error_codes.py`` scans the source tree and fails if
any emitted code is missing from this registry, which is what keeps the
taxonomy honest as methods grow new rejection paths.

This module deliberately imports nothing from the package so that every
layer — including :mod:`repro.core.framework` — can depend on it
without cycles.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# Verification reason codes (VerificationResult.reason)
# ----------------------------------------------------------------------

#: The accepting verdict.
OK = "ok"

# -- response envelope / dispatch --------------------------------------
#: The response bytes do not decode as a :class:`QueryResponse`.
MALFORMED_RESPONSE = "malformed-response"
#: The response names a method the client's registry does not know.
UNKNOWN_METHOD = "unknown-method"
#: Response / descriptor method fields disagree with the expected method.
METHOD_MISMATCH = "method-mismatch"

# -- descriptor trust checks -------------------------------------------
#: The owner signature on the descriptor does not verify.
BAD_SIGNATURE = "bad-signature"
#: The descriptor is authentic but signs a superseded graph version.
STALE_DESCRIPTOR = "stale-descriptor"
#: The trusted descriptor supplied out of band differs from the one in
#: the response (``repro-spv verify --descriptor``).
DESCRIPTOR_MISMATCH = "descriptor-mismatch"

# -- Merkle integrity (ΓT) ---------------------------------------------
#: A section names an ADS the descriptor does not cover.
UNKNOWN_TREE = "unknown-tree"
#: ΓS/ΓT material is syntactically broken (undecodable tuples, an
#: impossible Merkle cover, duplicate disclosures).
MALFORMED_PROOF = "malformed-proof"
#: A reconstructed Merkle root differs from the signed root.
ROOT_MISMATCH = "root-mismatch"

# -- reported path checks ----------------------------------------------
#: The response contains no path at all.
EMPTY_PATH = "empty-path"
#: The path endpoints do not match the query.
ENDPOINT_MISMATCH = "endpoint-mismatch"
#: The reported path repeats a node.
PATH_CYCLE = "path-cycle"
#: A path node has no authenticated tuple in ΓS.
PATH_NODE_MISSING = "path-node-missing"
#: A path hop is not an edge of the authenticated graph.
PHANTOM_EDGE = "phantom-edge"
#: The authenticated edge weights do not sum to the reported cost.
COST_MISMATCH = "cost-mismatch"

# -- optimality checks (per-method client searches) --------------------
#: The client search found a shorter route than the reported one.
NOT_OPTIMAL = "not-optimal"
#: The disclosed subgraph misses a node Lemma 1/2 requires (tuple drop).
INCOMPLETE_SUBGRAPH = "incomplete-subgraph"
#: The client search exhausted the disclosure without settling the target.
TARGET_UNREACHABLE = "target-unreachable"
#: No authenticated tuple was disclosed for the query source.
SOURCE_MISSING = "source-missing"
#: No authenticated tuple was disclosed for the query target.
TARGET_MISSING = "target-missing"
#: FULL: the disclosed distance tuple speaks about a different pair.
WRONG_DISTANCE_TUPLE = "wrong-distance-tuple"
#: LDM: a compressed tuple's representative was not disclosed.
MISSING_REPRESENTATIVE = "missing-representative"
#: HYP: a query endpoint is absent from its cell's disclosure.
ENDPOINT_MISSING = "endpoint-missing"
#: HYP: the directory entry disagrees with the disclosed cell material.
DIRECTORY_MISMATCH = "directory-mismatch"
#: HYP: a cell's tuple disclosure is incomplete.
INCOMPLETE_CELL = "incomplete-cell"
#: HYP: the hyper-edge disclosure between border sets is incomplete.
INCOMPLETE_HYPEREDGES = "incomplete-hyperedges"

# -- sharded serving (composite responses, manifests) ------------------
#: The shard manifest is missing, undecodable, or internally broken.
MALFORMED_MANIFEST = "malformed-manifest"
#: A composite segment names a shard the manifest does not cover.
UNKNOWN_SHARD = "unknown-shard"
#: A segment's embedded descriptor is not the one the manifest pins
#: for its shard (swapped root or a stale per-shard replay).
SHARD_DESCRIPTOR_MISMATCH = "shard-descriptor-mismatch"
#: A stitch junction is not a declared boundary node of the shard that
#: is supposed to own it, or adjacent segments fail to chain there.
JUNCTION_MISMATCH = "junction-mismatch"
#: The concatenated segment paths disagree with the composite's claimed
#: end-to-end path.
STITCH_MISMATCH = "stitch-mismatch"

#: Every reason code a :class:`VerificationResult` may carry.
VERIFICATION_REASONS = frozenset({
    OK,
    MALFORMED_RESPONSE, UNKNOWN_METHOD, METHOD_MISMATCH,
    BAD_SIGNATURE, STALE_DESCRIPTOR, DESCRIPTOR_MISMATCH,
    UNKNOWN_TREE, MALFORMED_PROOF, ROOT_MISMATCH,
    EMPTY_PATH, ENDPOINT_MISMATCH, PATH_CYCLE, PATH_NODE_MISSING,
    PHANTOM_EDGE, COST_MISMATCH,
    NOT_OPTIMAL, INCOMPLETE_SUBGRAPH, TARGET_UNREACHABLE,
    SOURCE_MISSING, TARGET_MISSING, WRONG_DISTANCE_TUPLE,
    MISSING_REPRESENTATIVE, ENDPOINT_MISSING, DIRECTORY_MISMATCH,
    INCOMPLETE_CELL, INCOMPLETE_HYPEREDGES,
    MALFORMED_MANIFEST, UNKNOWN_SHARD, SHARD_DESCRIPTOR_MISMATCH,
    JUNCTION_MISMATCH, STITCH_MISMATCH,
})

# ----------------------------------------------------------------------
# Wire error codes (envelope.ErrorMessage.code)
# ----------------------------------------------------------------------

#: The request frame failed the strict decoder (bad magic, truncation).
E_MALFORMED_FRAME = "malformed-frame"
#: The frame's protocol version is outside the server's accepted set.
E_UNSUPPORTED_VERSION = "unsupported-version"
#: The frame decoded but its message type is not routable.
E_UNKNOWN_MESSAGE = "unknown-message-type"
#: The message payload decoded but its contents are unusable.
E_BAD_REQUEST = "bad-request"
#: The provider could not answer (unknown node, unreachable target).
E_QUERY_FAILED = "query-failed"
#: The endpoint does not accept owner update pushes (no signer).
E_UPDATES_DISABLED = "updates-not-supported"
#: An update batch was rejected; the previous state keeps serving.
E_UPDATE_FAILED = "update-failed"
#: The server hit an unexpected internal failure.
E_INTERNAL = "internal-error"
#: The request body never arrived in full within the handler timeout
#: (a short body or a slow-loris client); the connection is closed.
E_REQUEST_TIMEOUT = "request-timeout"
#: A router could not reach (or got garbage from) a shard worker the
#: query needed; the query may succeed once the worker recovers.
E_SHARD_UNAVAILABLE = "shard-unavailable"

#: Every code a wire-level :class:`ErrorMessage` may carry.
WIRE_ERRORS = frozenset({
    E_MALFORMED_FRAME, E_UNSUPPORTED_VERSION, E_UNKNOWN_MESSAGE,
    E_BAD_REQUEST, E_QUERY_FAILED, E_UPDATES_DISABLED, E_UPDATE_FAILED,
    E_INTERNAL, E_REQUEST_TIMEOUT, E_SHARD_UNAVAILABLE,
})

#: The complete taxonomy (wire + verification), for documentation tools
#: and the source-scan test.
ALL_CODES = VERIFICATION_REASONS | WIRE_ERRORS
