"""A client that trusts nothing but bytes and the owner's public key.

:class:`RemoteClient` is the paper's third party made literal: it holds
a transport and a signature verifier, and everything else it learns —
the served method, the signed descriptor, every proof — arrives as wire
bytes it decodes and checks itself.  Verification goes through the
method registry's *class-level* ``verify`` (via
:class:`~repro.core.framework.Client`), so no built
:class:`~repro.core.method.VerificationMethod` instance — and hence no
graph data — ever exists on the client side.

The claim this layering buys: a response that verifies here would
verify for a browser on another continent, because both see the same
bytes and hold the same public key.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.envelope import (
    BatchQueryRequest,
    BatchQueryReply,
    DescriptorReply,
    DescriptorRequest,
    ErrorMessage,
    HelloReply,
    HelloRequest,
    ManifestReply,
    ManifestRequest,
    Message,
    MetricsReply,
    MetricsRequest,
    QueryReply,
    QueryRequest,
    SUPPORTED_VERSIONS,
    UpdatePushRequest,
    UpdateReply,
    WireUpdate,
    decode_frame,
    decode_message,
)
from repro.api import codes
from repro.core.framework import Client, VerificationResult
from repro.core.proofs import QueryResponse, SignedDescriptor
from repro.errors import ProtocolError, ReproError


@dataclass(frozen=True)
class RemoteResult:
    """One remotely served and locally verified query.

    ``response_bytes`` is the provider's payload verbatim (``None`` when
    the server answered with a wire error); ``wire_bytes`` is what the
    reply frame actually cost on the wire, framing included — the
    number to hold against the paper's proof-size figures.
    """

    source: int
    target: int
    verdict: VerificationResult
    response_bytes: "bytes | None"
    wire_bytes: int
    cached: bool = False
    #: True when ``response_bytes`` holds a stitched cross-shard
    #: :class:`~repro.shard.stitch.CompositeResponse` instead of a
    #: plain :class:`~repro.core.proofs.QueryResponse`.
    composite: bool = False

    @property
    def ok(self) -> bool:
        """Whether the response arrived and verified."""
        return self.verdict.ok

    @property
    def response(self) -> "QueryResponse | None":
        """The decoded response (re-decoded on access; None on error).

        Composite results have no single ``QueryResponse``; use
        :attr:`composite_response` for those.
        """
        if self.response_bytes is None or self.composite:
            return None
        return QueryResponse.decode(self.response_bytes)

    @property
    def composite_response(self):
        """The decoded stitched answer (None unless ``composite``)."""
        if self.response_bytes is None or not self.composite:
            return None
        from repro.shard.stitch import CompositeResponse

        return CompositeResponse.decode(self.response_bytes)

    @property
    def path(self) -> "tuple | None":
        """``(path_nodes, path_cost)`` regardless of response shape."""
        decoded = self.composite_response if self.composite else self.response
        if decoded is None:
            return None
        return decoded.path_nodes, decoded.path_cost


class RemoteClient:
    """Query a proof service over any transport and verify from bytes.

    >>> transport = HttpTransport("http://127.0.0.1:8350")  # doctest: +SKIP
    >>> client = RemoteClient(transport, owner_public.verify)  # doctest: +SKIP
    >>> client.query(3, 9).ok                               # doctest: +SKIP
    True
    """

    def __init__(self, transport, verify_signature, *,
                 min_descriptor_version: "int | None" = None) -> None:
        """``transport`` has ``roundtrip(bytes) -> bytes`` (or is a bare
        callable); ``verify_signature`` and ``min_descriptor_version``
        are the trust anchors, exactly as for
        :class:`~repro.core.framework.Client`.
        """
        self.transport = transport
        #: The bytes-first verifier doing the actual checking.
        self.client = Client(verify_signature,
                             min_descriptor_version=min_descriptor_version)
        #: Cached, already-signature-checked shard manifest (set after
        #: the first composite reply or an explicit fetch).
        self._manifest = None

    # ------------------------------------------------------------------
    def require_version(self, version: int) -> None:
        """Raise the freshness floor (monotonic; see ``Client``)."""
        self.client.require_version(version)

    @property
    def min_descriptor_version(self) -> "int | None":
        """The current stale-replay rejection floor."""
        return self.client.min_descriptor_version

    # ------------------------------------------------------------------
    def _roundtrip(self, frame: bytes) -> bytes:
        roundtrip = getattr(self.transport, "roundtrip", self.transport)
        return roundtrip(frame)

    def _exchange(self, request: Message, reply_cls) -> Message:
        """Send one request; return its typed reply or the error message.

        Malformed reply frames raise :class:`ProtocolError` (the
        transport or server is broken — there is no verdict to salvage);
        a well-formed :class:`ErrorMessage` is returned for the caller
        to turn into a failure value where one makes sense.
        """
        reply_frame = self._roundtrip(request.to_frame())
        return self.interpret_exchange(reply_frame, reply_cls)

    @staticmethod
    def interpret_exchange(reply_frame: bytes, reply_cls) -> Message:
        """Decode one reply frame into its expected typed message.

        The transport-free half of :meth:`_exchange`, split out so
        drivers that perform their own roundtrips (the asyncio load
        driver) reuse the exact decoding discipline.
        """
        message = decode_message(decode_frame(reply_frame))
        if isinstance(message, (reply_cls, ErrorMessage)):
            return message
        raise ProtocolError(
            f"expected {reply_cls.__name__} or ErrorMessage, "
            f"got {type(message).__name__}"
        )

    @staticmethod
    def _raise_on_error(message: Message) -> Message:
        if isinstance(message, ErrorMessage):
            raise ProtocolError(f"server error {message.code}: {message.detail}")
        return message

    # ------------------------------------------------------------------
    def hello(self, versions=SUPPORTED_VERSIONS) -> HelloReply:
        """Negotiate a protocol version; learn what is being served."""
        return self._raise_on_error(
            self._exchange(HelloRequest(tuple(versions)), HelloReply))

    def fetch_descriptor(self) -> "tuple[SignedDescriptor, bytes]":
        """The served signed descriptor, decoded plus verbatim bytes.

        The descriptor inside each response is what verification
        actually trusts; this call exists so a client can inspect the
        service (method, graph version) before querying, and so
        artifact-based verification (``repro-spv verify``) has a
        descriptor file to pin.
        """
        reply = self._raise_on_error(
            self._exchange(DescriptorRequest(), DescriptorReply))
        return SignedDescriptor.decode(reply.descriptor_bytes), reply.descriptor_bytes

    def fetch_manifest(self):
        """The served shard manifest: decoded, verified, plus raw bytes.

        Routers only.  The manifest is the sharded counterpart of the
        descriptor: owner-signed, so the router cannot misrepresent the
        partition.  Raises :class:`ProtocolError` when the server has
        none or the bytes do not decode; the signature/freshness check
        is the returned manifest's and is performed here — a manifest
        that fails it raises too, since nothing it says can be trusted.
        """
        from repro.shard.manifest import ShardManifest, verify_manifest

        reply = self._raise_on_error(
            self._exchange(ManifestRequest(), ManifestReply))
        try:
            manifest = ShardManifest.decode(reply.manifest_bytes)
        except ReproError as exc:
            raise ProtocolError(f"served manifest does not decode: {exc}") from exc
        verdict = verify_manifest(manifest, self.client.verify_signature,
                                  min_version=self.client.min_descriptor_version)
        if not verdict.ok:
            raise ProtocolError(
                f"served manifest rejected ({verdict.reason}): {verdict.detail}"
            )
        self._manifest = manifest
        return manifest, reply.manifest_bytes

    def _composite_verdict(self, source: int, target: int,
                           composite_bytes: bytes) -> VerificationResult:
        """Verify a stitched reply, fetching the manifest on first use."""
        from repro.shard.stitch import verify_composite

        floor = self.client.min_descriptor_version
        manifest = self._manifest
        if manifest is None or (floor is not None and manifest.version < floor):
            try:
                manifest, _ = self.fetch_manifest()
            except ProtocolError as exc:
                return VerificationResult.failure(
                    codes.MALFORMED_MANIFEST,
                    f"cannot obtain a trusted shard manifest: {exc}",
                )
        return verify_composite(source, target, composite_bytes, manifest,
                                self.client.verify_signature,
                                min_version=floor, manifest_verified=True)

    def query(self, source: int, target: int) -> RemoteResult:
        """One verified shortest path query over the wire.

        Against a shard router the reply may be a stitched composite
        (``result.composite``); the verdict then covers every per-shard
        segment plus the cross-shard glue (see
        :func:`repro.shard.stitch.verify_composite`).
        """
        request = QueryRequest(source, target)
        reply_frame = self._roundtrip(request.to_frame())
        return self.interpret_query_reply(source, target, reply_frame)

    def interpret_query_reply(self, source: int, target: int,
                              reply_frame: bytes) -> RemoteResult:
        """Decode and verify one query reply frame.

        The transport-free half of :meth:`query`: callers that already
        carried the frame (async drivers, recorded traffic) get the
        identical decoding, composite handling and verification.
        """
        wire_bytes = len(reply_frame)
        message = decode_message(decode_frame(reply_frame))
        if isinstance(message, ErrorMessage):
            return RemoteResult(
                source, target,
                VerificationResult.failure(message.code, message.detail),
                None, wire_bytes,
            )
        if not isinstance(message, QueryReply):
            raise ProtocolError(
                f"expected QueryReply or ErrorMessage, got {type(message).__name__}"
            )
        if message.composite:
            verdict = self._composite_verdict(source, target, message.composite)
            return RemoteResult(source, target, verdict, message.composite,
                                wire_bytes, cached=message.cached,
                                composite=True)
        verdict = self.client.verify_bytes(source, target, message.response_bytes)
        return RemoteResult(source, target, verdict, message.response_bytes,
                            wire_bytes, cached=message.cached)

    def query_many(self, pairs) -> "list[RemoteResult]":
        """A burst of queries in one frame, individually verified.

        Asks for the multiproof reply layout (the server falls back to
        per-item responses when it cannot share one); pass
        ``multiproof=False`` to :meth:`query_batch` to force the legacy
        layout.
        """
        return self.query_batch(pairs)

    def query_batch(self, pairs, *, multiproof: bool = True) -> "list[RemoteResult]":
        """A burst of queries in one frame, individually verified.

        With ``multiproof=True`` the server is asked to answer with one
        shared Merkle multiproof: the ok slots arrive as one
        deduplicated digest set which this client expands back into
        per-query standalone responses
        (:func:`~repro.core.batch.recover_responses`) — byte-identical
        to independently served ones — and verifies each through the
        unchanged bytes-first path.  Per-query trust is therefore
        exactly what :meth:`query` provides; only the wire cost
        changes.
        """
        pairs = [(int(s), int(t)) for s, t in pairs]
        request = BatchQueryRequest(tuple(pairs), multiproof=multiproof)
        reply_frame = self._roundtrip(request.to_frame())
        return self.interpret_batch_reply(pairs, reply_frame)

    def interpret_batch_reply(self, pairs,
                              reply_frame: bytes) -> "list[RemoteResult]":
        """Decode and verify one batch reply frame against its queries.

        The transport-free half of :meth:`query_batch` (same multiproof
        expansion, per-slot verdicts and wire accounting), reused by the
        asyncio load driver.
        """
        pairs = [(int(s), int(t)) for s, t in pairs]
        message = decode_message(decode_frame(reply_frame))
        self._raise_on_error(message)
        if not isinstance(message, BatchQueryReply):
            raise ProtocolError(
                f"expected BatchQueryReply, got {type(message).__name__}"
            )
        if len(message.items) != len(pairs):
            raise ProtocolError(
                f"batch reply has {len(message.items)} items for "
                f"{len(pairs)} queries"
            )
        if message.shared and not message.composite_slots:
            return self._verify_multiproof(pairs, message, len(reply_frame))
        composite_slots = frozenset(message.composite_slots)
        # The frame's framing bytes are charged to the batch's first
        # item; per-item payload sizes dominate by orders of magnitude.
        overhead = len(reply_frame) - sum(
            len(item.response_bytes or b"") for item in message.items)
        results = []
        for index, ((source, target), item) in enumerate(zip(pairs, message.items)):
            wire = len(item.response_bytes or b"") + (overhead if index == 0 else 0)
            if not item.ok:
                results.append(RemoteResult(
                    source, target,
                    VerificationResult.failure(item.error_code, item.error_detail),
                    None, wire,
                ))
                continue
            if index in composite_slots:
                verdict = self._composite_verdict(source, target,
                                                  item.response_bytes)
                results.append(RemoteResult(source, target, verdict,
                                            item.response_bytes, wire,
                                            cached=item.cached,
                                            composite=True))
                continue
            verdict = self.client.verify_bytes(source, target, item.response_bytes)
            results.append(RemoteResult(source, target, verdict,
                                        item.response_bytes, wire,
                                        cached=item.cached))
        return results

    def _verify_multiproof(self, pairs, message: BatchQueryReply,
                           frame_bytes: int) -> "list[RemoteResult]":
        """Expand a shared-multiproof reply and verify every slot.

        The shared blob is untrusted input: a decode failure or a
        structurally broken multiproof (omitted digests, covers that
        cannot be recovered) yields failure verdicts for the ok slots —
        never an unhandled exception — while value tampering flows into
        the recovered responses and fails signature/root checks inside
        ``verify_bytes`` exactly as it would for independent replies.
        """
        from repro.core.batch import MultiProofBatch, recover_responses

        ok_indices = [i for i, item in enumerate(message.items) if item.ok]
        recovered: "dict[int, bytes]" = {}
        failure: "VerificationResult | None" = None
        try:
            batch = MultiProofBatch.decode(message.shared)
            if len(batch.queries) != len(ok_indices):
                raise ProtocolError(
                    f"shared multiproof covers {len(batch.queries)} queries "
                    f"for {len(ok_indices)} ok slots"
                )
            for slot, (vs, vt) in zip(ok_indices, batch.queries):
                if (vs, vt) != pairs[slot]:
                    raise ProtocolError(
                        f"shared multiproof answers ({vs}, {vt}) in the "
                        f"slot of query {pairs[slot]}"
                    )
            responses = recover_responses(batch)
            recovered = {
                slot: response.encode()
                for slot, response in zip(ok_indices, responses)
            }
        except ReproError as exc:
            failure = VerificationResult.failure(
                codes.MALFORMED_PROOF,
                f"shared multiproof rejected: {exc}",
            )
        # The shared material serves the whole batch; amortize the frame
        # evenly (the remainder rides on the first item).
        count = len(pairs)
        share = frame_bytes // count if count else 0
        results = []
        for index, ((source, target), item) in enumerate(zip(pairs, message.items)):
            wire = share + (frame_bytes - share * count if index == 0 else 0)
            if not item.ok:
                results.append(RemoteResult(
                    source, target,
                    VerificationResult.failure(item.error_code, item.error_detail),
                    None, wire,
                ))
                continue
            if failure is not None:
                results.append(RemoteResult(source, target, failure, None, wire))
                continue
            response_bytes = recovered[index]
            verdict = self.client.verify_bytes(source, target, response_bytes)
            results.append(RemoteResult(source, target, verdict,
                                        response_bytes, wire,
                                        cached=item.cached))
        return results

    def push_updates(self, updates) -> UpdateReply:
        """Push an owner mutation batch (server must hold the signer).

        ``updates`` may be :class:`~repro.api.envelope.WireUpdate`,
        :class:`~repro.workload.updates.GraphUpdate`, or any object with
        ``kind`` / ``u`` / ``v`` / ``weight``.  Raises
        :class:`ProtocolError` when the server refuses
        (``updates-not-supported``) or the batch fails.
        """
        wire_updates = tuple(
            WireUpdate(u.kind, u.u, u.v, getattr(u, "weight", 0.0))
            for u in updates
        )
        return self._raise_on_error(
            self._exchange(UpdatePushRequest(wire_updates), UpdateReply))

    def metrics(self) -> MetricsReply:
        """The server's current metrics window."""
        return self._raise_on_error(
            self._exchange(MetricsRequest(), MetricsReply))
