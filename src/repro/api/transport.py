"""Transports: how a request frame reaches a dispatcher.

A transport is anything with ``roundtrip(frame: bytes) -> bytes``.  The
protocol layer never looks inside one, so the same
:class:`~repro.api.client.RemoteClient` runs over:

* :class:`InProcessTransport` — the trivial transport: hands the frame
  straight to a local :class:`~repro.api.dispatcher.Dispatcher`.  This
  is what "three parties in one Python process" becomes under the wire
  API: the same bytes cross the same boundary, minus the socket.
* :class:`HttpTransport` — POSTs frames to a
  :class:`~repro.service.http.ProofHttpServer` (or anything speaking
  the same one-endpoint contract) using only the standard library.
"""

from __future__ import annotations

import urllib.error
import urllib.request

from repro.errors import ProtocolError


class Transport:
    """Abstract frame carrier (duck-typed; subclassing is optional)."""

    def roundtrip(self, frame: bytes) -> bytes:
        """Deliver a request frame, return the reply frame."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any held connections (default: nothing to do)."""


class InProcessTransport(Transport):
    """The trivial transport: frames go straight to a dispatcher.

    ``wire_log``, when enabled, records ``(request, reply)`` sizes so
    in-process tests can account bytes-on-wire exactly like a network
    frontend would.
    """

    def __init__(self, dispatcher, *, log_frames: bool = False) -> None:
        self.dispatcher = dispatcher
        self.wire_log: "list[tuple[int, int]]" = []
        self._log_frames = log_frames

    def roundtrip(self, frame: bytes) -> bytes:
        reply = self.dispatcher.dispatch(frame)
        if self._log_frames:
            self.wire_log.append((len(frame), len(reply)))
        return reply


class HttpTransport(Transport):
    """Frames over HTTP POST, stdlib-only.

    The contract is one endpoint: ``POST {base_url}/rpc`` with the
    request frame as an ``application/octet-stream`` body; the reply
    frame comes back as the response body with status 200 (protocol
    errors ride *inside* the frame, keeping HTTP itself boring).
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    @property
    def endpoint(self) -> str:
        """The rpc URL frames are POSTed to."""
        return f"{self.base_url}/rpc"

    def roundtrip(self, frame: bytes) -> bytes:
        request = urllib.request.Request(
            self.endpoint,
            data=bytes(frame),
            method="POST",
            headers={"Content-Type": "application/octet-stream"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                if reply.status != 200:
                    raise ProtocolError(
                        f"HTTP {reply.status} from {self.endpoint}"
                    )
                return reply.read()
        except urllib.error.HTTPError as exc:
            raise ProtocolError(
                f"HTTP {exc.code} from {self.endpoint}: {exc.reason}"
            ) from exc
        except urllib.error.URLError as exc:
            raise ProtocolError(
                f"cannot reach {self.endpoint}: {exc.reason}"
            ) from exc
