"""Transports: how a request frame reaches a dispatcher.

A transport is anything with ``roundtrip(frame: bytes) -> bytes``.  The
protocol layer never looks inside one, so the same
:class:`~repro.api.client.RemoteClient` runs over:

* :class:`InProcessTransport` — the trivial transport: hands the frame
  straight to a local :class:`~repro.api.dispatcher.Dispatcher`.  This
  is what "three parties in one Python process" becomes under the wire
  API: the same bytes cross the same boundary, minus the socket.
* :class:`HttpTransport` — POSTs frames to a
  :class:`~repro.service.http.ProofHttpServer` (or anything speaking
  the same one-endpoint contract) using only the standard library.
  The connection is **persistent**: frames after the first reuse the
  established HTTP/1.1 keep-alive connection, which is what the server
  side has always advertised — reconnecting per frame buries proof
  serving time under TCP setup and was precisely the defect behind the
  sub-1x worker-scaling artifact.
* :class:`PooledHttpTransport` — the thread-safe variant for
  multi-threaded load drivers: one persistent connection per calling
  thread, all released by a single ``close()``.
* :class:`AsyncTransport` — the event-loop variant: the same persistent
  one-endpoint contract, but ``roundtrip`` is a coroutine, so one
  thread can hold hundreds of these (one per simulated client) and
  multiplex them on a single loop.  This is the demand side of the
  async serving core.
"""

from __future__ import annotations

import asyncio
import http.client
import socket
import threading
from urllib.parse import urlsplit

from repro.errors import ProtocolError


class Transport:
    """Abstract frame carrier (duck-typed; subclassing is optional)."""

    def roundtrip(self, frame: bytes) -> bytes:
        """Deliver a request frame, return the reply frame."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any held connections (default: nothing to do)."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InProcessTransport(Transport):
    """The trivial transport: frames go straight to a dispatcher.

    ``wire_log``, when enabled, records ``(request, reply)`` sizes so
    in-process tests can account bytes-on-wire exactly like a network
    frontend would.
    """

    def __init__(self, dispatcher, *, log_frames: bool = False) -> None:
        self.dispatcher = dispatcher
        self.wire_log: "list[tuple[int, int]]" = []
        self._log_frames = log_frames

    def roundtrip(self, frame: bytes) -> bytes:
        reply = self.dispatcher.dispatch(frame)
        if self._log_frames:
            self.wire_log.append((len(frame), len(reply)))
        return reply


class HttpTransport(Transport):
    """Frames over a persistent HTTP connection, stdlib-only.

    The contract is one endpoint: ``POST {base_url}/rpc`` with the
    request frame as an ``application/octet-stream`` body; the reply
    frame comes back as the response body with status 200 (protocol
    errors ride *inside* the frame, keeping HTTP itself boring).

    Connection handling:

    * the first ``roundtrip`` dials; later ones reuse the connection
      (HTTP/1.1 keep-alive, matching the server's advertised
      ``protocol_version``);
    * a transport failure on a **reused** connection — the server
      restarted, idled us out, or exhausted its keep-alive budget — is
      retried exactly once on a fresh connection.  A failure on a
      connection dialed for this very call is reported immediately:
      retrying a dead endpoint only doubles the timeout;
    * ``close()`` drops the held connection; the next call redials, so
      a closed transport remains usable.
    * ``keep_alive=False`` restores one-connection-per-frame behaviour
      — the measurement baseline the persistent path is gated against,
      not something production clients should choose.

    Not thread-safe: one connection means one in-flight request.  Use
    :class:`PooledHttpTransport` from multi-threaded drivers.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0,
                 keep_alive: bool = True) -> None:
        self.base_url = base_url.rstrip("/")
        split = urlsplit(self.base_url)
        if split.scheme != "http" or split.hostname is None:
            raise ProtocolError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self._host = split.hostname
        self._port = split.port if split.port is not None else 80
        self._path_prefix = split.path
        self.timeout = timeout
        self.keep_alive = keep_alive
        self._conn: "http.client.HTTPConnection | None" = None

    @property
    def endpoint(self) -> str:
        """The rpc URL frames are POSTed to."""
        return f"{self.base_url}/rpc"

    # ------------------------------------------------------------------
    def _connect(self) -> "http.client.HTTPConnection":
        conn = http.client.HTTPConnection(self._host, self._port,
                                          timeout=self.timeout)
        try:
            conn.connect()
            # http.client writes headers and body as separate segments;
            # without TCP_NODELAY, Nagle holds the second one until the
            # first is ACKed, which on a long-lived connection (past the
            # kernel's initial quickack window) costs a delayed-ACK
            # round trip (~40ms) per request — slower than redialing.
            conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError as exc:
            conn.close()
            raise ProtocolError(
                f"cannot reach {self.endpoint}: {exc}"
            ) from exc
        return conn

    def _request(self, conn: "http.client.HTTPConnection",
                 frame: bytes) -> bytes:
        conn.request(
            "POST", f"{self._path_prefix}/rpc", body=frame,
            headers={"Content-Type": "application/octet-stream"},
        )
        response = conn.getresponse()
        body = response.read()
        if response.will_close:
            # The server announced this connection is done (keep-alive
            # budget exhausted, shutdown): drop it now so the next call
            # redials instead of tripping the stale-retry path.
            conn.close()
            if conn is self._conn:
                self._conn = None
        if response.status != 200:
            raise ProtocolError(
                f"HTTP {response.status} from {self.endpoint}"
            )
        return body

    def roundtrip(self, frame: bytes) -> bytes:
        frame = bytes(frame)
        if not self.keep_alive:
            conn = self._connect()
            try:
                return self._request(conn, frame)
            except (http.client.HTTPException, OSError) as exc:
                raise ProtocolError(
                    f"transport failure against {self.endpoint}: {exc}"
                ) from exc
            finally:
                conn.close()
        fresh = self._conn is None
        if fresh:
            self._conn = self._connect()
        try:
            return self._request(self._conn, frame)
        except (http.client.HTTPException, OSError) as exc:
            self.close()
            if fresh:
                raise ProtocolError(
                    f"transport failure against {self.endpoint}: {exc}"
                ) from exc
        # Stale reused connection: one retry on a fresh dial.
        self._conn = self._connect()
        try:
            return self._request(self._conn, frame)
        except (http.client.HTTPException, OSError) as exc:
            self.close()
            raise ProtocolError(
                f"transport failure against {self.endpoint} "
                f"(after reconnect): {exc}"
            ) from exc

    def close(self) -> None:
        """Drop the held connection (the next call redials)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None


class PooledHttpTransport(Transport):
    """One persistent :class:`HttpTransport` per calling thread.

    ``http.client`` connections carry one in-flight request, so a
    multi-threaded load driver sharing a single :class:`HttpTransport`
    would interleave requests on one socket.  This pool hands every
    thread its own lazily-dialed persistent transport (thread-local
    lookup, no locking on the hot path) and releases them all in
    ``close()``.  From N driver threads it therefore holds exactly N
    server-side connections — the pooled persistent-connection client
    the worker-scaling benchmark drives.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0,
                 keep_alive: bool = True) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.keep_alive = keep_alive
        self._local = threading.local()
        self._lock = threading.Lock()
        self._transports: "list[HttpTransport]" = []

    @property
    def endpoint(self) -> str:
        """The rpc URL frames are POSTed to."""
        return f"{self.base_url}/rpc"

    def _transport(self) -> HttpTransport:
        transport = getattr(self._local, "transport", None)
        if transport is None:
            transport = HttpTransport(self.base_url, timeout=self.timeout,
                                      keep_alive=self.keep_alive)
            self._local.transport = transport
            with self._lock:
                self._transports.append(transport)
        return transport

    def roundtrip(self, frame: bytes) -> bytes:
        return self._transport().roundtrip(frame)

    def close(self) -> None:
        """Drop every thread's connection (safe from any thread)."""
        with self._lock:
            transports, self._transports = self._transports, []
        for transport in transports:
            transport.close()
        # Threads keep their HttpTransport objects (closing only drops
        # sockets); re-track them so a later close() sees reused ones.
        self._local = threading.local()


class AsyncTransport:
    """Frames over a persistent connection, awaited on an event loop.

    Same one-endpoint contract as :class:`HttpTransport` — ``POST
    {base_url}/rpc``, frame in, frame out, status 200 or bust — and the
    same connection discipline: the first ``roundtrip`` dials, later
    ones reuse the connection, a failure on a *reused* connection is
    retried once on a fresh dial, ``Connection: close`` from the server
    drops the connection so the next call redials.

    The difference is concurrency shape: this class is **not** for
    threads at all.  One event loop holds C of these (one per simulated
    client), and each carries at most one in-flight request — so a
    single driver thread sustains hundreds to thousands of persistent
    keep-alive connections, the regime the spawn-per-client SLO harness
    could never reach.

    Must be used from the event loop that first dialed it; the HTTP
    response is parsed by hand (status line, headers, sized body)
    because ``http.client`` is blocking.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        split = urlsplit(self.base_url)
        if split.scheme != "http" or split.hostname is None:
            raise ProtocolError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self._host = split.hostname
        self._port = split.port if split.port is not None else 80
        self._path_prefix = split.path
        host_header = split.hostname
        if ":" in host_header:  # bare IPv6 literal → bracket for Host:
            host_header = f"[{host_header}]"
        self._netloc = f"{host_header}:{self._port}"
        self.timeout = timeout
        self._reader: "asyncio.StreamReader | None" = None
        self._writer: "asyncio.StreamWriter | None" = None

    @property
    def endpoint(self) -> str:
        """The rpc URL frames are POSTed to."""
        return f"{self.base_url}/rpc"

    # ------------------------------------------------------------------
    async def _connect(self) -> None:
        try:
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(self._host, self._port),
                self.timeout,
            )
        except (OSError, asyncio.TimeoutError, TimeoutError) as exc:
            self._reader = self._writer = None
            raise ProtocolError(
                f"cannot reach {self.endpoint}: {exc}"
            ) from exc
        sock = self._writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass

    async def _drop(self) -> None:
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _request(self, frame: bytes) -> bytes:
        reader, writer = self._reader, self._writer
        # Single write: request line, headers and body leave together.
        writer.write(
            (f"POST {self._path_prefix}/rpc HTTP/1.1\r\n"
             f"Host: {self._netloc}\r\n"
             f"Content-Type: application/octet-stream\r\n"
             f"Content-Length: {len(frame)}\r\n\r\n").encode("latin-1")
            + frame
        )
        await writer.drain()
        status_line = await asyncio.wait_for(reader.readline(), self.timeout)
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.split(None, 2)
        if len(parts) < 2 or not parts[0].startswith(b"HTTP/"):
            raise ConnectionError(f"not an HTTP reply: {status_line[:40]!r}")
        status = int(parts[1])
        length = None
        will_close = parts[0] == b"HTTP/1.0"
        while True:
            line = await asyncio.wait_for(reader.readline(), self.timeout)
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise ConnectionError("server closed mid-headers")
            name, sep, value = line.partition(b":")
            if not sep:
                raise ConnectionError(f"malformed header: {line[:40]!r}")
            name = name.strip().lower()
            if name == b"content-length":
                length = int(value.strip())
            elif name == b"connection":
                will_close = value.strip().lower() == b"close"
        if length is None:
            raise ConnectionError("reply without Content-Length")
        body = await asyncio.wait_for(reader.readexactly(length),
                                      self.timeout)
        if will_close:
            # Keep-alive budget exhausted or shutdown: redial next call
            # instead of tripping the stale-retry path.
            await self._drop()
        if status != 200:
            raise ProtocolError(f"HTTP {status} from {self.endpoint}")
        return body

    async def roundtrip(self, frame: bytes) -> bytes:
        """Deliver a request frame, return the reply frame."""
        frame = bytes(frame)
        fresh = self._writer is None
        if fresh:
            await self._connect()
        try:
            return await self._request(frame)
        except ProtocolError:
            raise
        except (OSError, EOFError, ValueError, asyncio.TimeoutError,
                asyncio.IncompleteReadError) as exc:
            await self._drop()
            if fresh:
                raise ProtocolError(
                    f"transport failure against {self.endpoint}: {exc}"
                ) from exc
        # Stale reused connection: one retry on a fresh dial.
        await self._connect()
        try:
            return await self._request(frame)
        except ProtocolError:
            raise
        except (OSError, EOFError, ValueError, asyncio.TimeoutError,
                asyncio.IncompleteReadError) as exc:
            await self._drop()
            raise ProtocolError(
                f"transport failure against {self.endpoint} "
                f"(after reconnect): {exc}"
            ) from exc

    async def close(self) -> None:
        """Drop the held connection (the next call redials)."""
        await self._drop()

    async def __aenter__(self) -> "AsyncTransport":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
