"""Transports: how a request frame reaches a dispatcher.

A transport is anything with ``roundtrip(frame: bytes) -> bytes``.  The
protocol layer never looks inside one, so the same
:class:`~repro.api.client.RemoteClient` runs over:

* :class:`InProcessTransport` — the trivial transport: hands the frame
  straight to a local :class:`~repro.api.dispatcher.Dispatcher`.  This
  is what "three parties in one Python process" becomes under the wire
  API: the same bytes cross the same boundary, minus the socket.
* :class:`HttpTransport` — POSTs frames to a
  :class:`~repro.service.http.ProofHttpServer` (or anything speaking
  the same one-endpoint contract) using only the standard library.
  The connection is **persistent**: frames after the first reuse the
  established HTTP/1.1 keep-alive connection, which is what the server
  side has always advertised — reconnecting per frame buries proof
  serving time under TCP setup and was precisely the defect behind the
  sub-1x worker-scaling artifact.
* :class:`PooledHttpTransport` — the thread-safe variant for
  multi-threaded load drivers: one persistent connection per calling
  thread, all released by a single ``close()``.
"""

from __future__ import annotations

import http.client
import socket
import threading
from urllib.parse import urlsplit

from repro.errors import ProtocolError


class Transport:
    """Abstract frame carrier (duck-typed; subclassing is optional)."""

    def roundtrip(self, frame: bytes) -> bytes:
        """Deliver a request frame, return the reply frame."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any held connections (default: nothing to do)."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InProcessTransport(Transport):
    """The trivial transport: frames go straight to a dispatcher.

    ``wire_log``, when enabled, records ``(request, reply)`` sizes so
    in-process tests can account bytes-on-wire exactly like a network
    frontend would.
    """

    def __init__(self, dispatcher, *, log_frames: bool = False) -> None:
        self.dispatcher = dispatcher
        self.wire_log: "list[tuple[int, int]]" = []
        self._log_frames = log_frames

    def roundtrip(self, frame: bytes) -> bytes:
        reply = self.dispatcher.dispatch(frame)
        if self._log_frames:
            self.wire_log.append((len(frame), len(reply)))
        return reply


class HttpTransport(Transport):
    """Frames over a persistent HTTP connection, stdlib-only.

    The contract is one endpoint: ``POST {base_url}/rpc`` with the
    request frame as an ``application/octet-stream`` body; the reply
    frame comes back as the response body with status 200 (protocol
    errors ride *inside* the frame, keeping HTTP itself boring).

    Connection handling:

    * the first ``roundtrip`` dials; later ones reuse the connection
      (HTTP/1.1 keep-alive, matching the server's advertised
      ``protocol_version``);
    * a transport failure on a **reused** connection — the server
      restarted, idled us out, or exhausted its keep-alive budget — is
      retried exactly once on a fresh connection.  A failure on a
      connection dialed for this very call is reported immediately:
      retrying a dead endpoint only doubles the timeout;
    * ``close()`` drops the held connection; the next call redials, so
      a closed transport remains usable.
    * ``keep_alive=False`` restores one-connection-per-frame behaviour
      — the measurement baseline the persistent path is gated against,
      not something production clients should choose.

    Not thread-safe: one connection means one in-flight request.  Use
    :class:`PooledHttpTransport` from multi-threaded drivers.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0,
                 keep_alive: bool = True) -> None:
        self.base_url = base_url.rstrip("/")
        split = urlsplit(self.base_url)
        if split.scheme != "http" or split.hostname is None:
            raise ProtocolError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self._host = split.hostname
        self._port = split.port if split.port is not None else 80
        self._path_prefix = split.path
        self.timeout = timeout
        self.keep_alive = keep_alive
        self._conn: "http.client.HTTPConnection | None" = None

    @property
    def endpoint(self) -> str:
        """The rpc URL frames are POSTed to."""
        return f"{self.base_url}/rpc"

    # ------------------------------------------------------------------
    def _connect(self) -> "http.client.HTTPConnection":
        conn = http.client.HTTPConnection(self._host, self._port,
                                          timeout=self.timeout)
        try:
            conn.connect()
            # http.client writes headers and body as separate segments;
            # without TCP_NODELAY, Nagle holds the second one until the
            # first is ACKed, which on a long-lived connection (past the
            # kernel's initial quickack window) costs a delayed-ACK
            # round trip (~40ms) per request — slower than redialing.
            conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError as exc:
            conn.close()
            raise ProtocolError(
                f"cannot reach {self.endpoint}: {exc}"
            ) from exc
        return conn

    def _request(self, conn: "http.client.HTTPConnection",
                 frame: bytes) -> bytes:
        conn.request(
            "POST", f"{self._path_prefix}/rpc", body=frame,
            headers={"Content-Type": "application/octet-stream"},
        )
        response = conn.getresponse()
        body = response.read()
        if response.will_close:
            # The server announced this connection is done (keep-alive
            # budget exhausted, shutdown): drop it now so the next call
            # redials instead of tripping the stale-retry path.
            conn.close()
            if conn is self._conn:
                self._conn = None
        if response.status != 200:
            raise ProtocolError(
                f"HTTP {response.status} from {self.endpoint}"
            )
        return body

    def roundtrip(self, frame: bytes) -> bytes:
        frame = bytes(frame)
        if not self.keep_alive:
            conn = self._connect()
            try:
                return self._request(conn, frame)
            except (http.client.HTTPException, OSError) as exc:
                raise ProtocolError(
                    f"transport failure against {self.endpoint}: {exc}"
                ) from exc
            finally:
                conn.close()
        fresh = self._conn is None
        if fresh:
            self._conn = self._connect()
        try:
            return self._request(self._conn, frame)
        except (http.client.HTTPException, OSError) as exc:
            self.close()
            if fresh:
                raise ProtocolError(
                    f"transport failure against {self.endpoint}: {exc}"
                ) from exc
        # Stale reused connection: one retry on a fresh dial.
        self._conn = self._connect()
        try:
            return self._request(self._conn, frame)
        except (http.client.HTTPException, OSError) as exc:
            self.close()
            raise ProtocolError(
                f"transport failure against {self.endpoint} "
                f"(after reconnect): {exc}"
            ) from exc

    def close(self) -> None:
        """Drop the held connection (the next call redials)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None


class PooledHttpTransport(Transport):
    """One persistent :class:`HttpTransport` per calling thread.

    ``http.client`` connections carry one in-flight request, so a
    multi-threaded load driver sharing a single :class:`HttpTransport`
    would interleave requests on one socket.  This pool hands every
    thread its own lazily-dialed persistent transport (thread-local
    lookup, no locking on the hot path) and releases them all in
    ``close()``.  From N driver threads it therefore holds exactly N
    server-side connections — the pooled persistent-connection client
    the worker-scaling benchmark drives.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0,
                 keep_alive: bool = True) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.keep_alive = keep_alive
        self._local = threading.local()
        self._lock = threading.Lock()
        self._transports: "list[HttpTransport]" = []

    @property
    def endpoint(self) -> str:
        """The rpc URL frames are POSTed to."""
        return f"{self.base_url}/rpc"

    def _transport(self) -> HttpTransport:
        transport = getattr(self._local, "transport", None)
        if transport is None:
            transport = HttpTransport(self.base_url, timeout=self.timeout,
                                      keep_alive=self.keep_alive)
            self._local.transport = transport
            with self._lock:
                self._transports.append(transport)
        return transport

    def roundtrip(self, frame: bytes) -> bytes:
        return self._transport().roundtrip(frame)

    def close(self) -> None:
        """Drop every thread's connection (safe from any thread)."""
        with self._lock:
            transports, self._transports = self._transports, []
        for transport in transports:
            transport.close()
        # Threads keep their HttpTransport objects (closing only drops
        # sockets); re-track them so a later close() sees reused ones.
        self._local = threading.local()
