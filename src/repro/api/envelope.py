"""Framed wire envelopes: the transport-agnostic protocol surface.

Every exchange between a client and a proof service is one *frame*:

.. code-block:: text

    +--------+-----------------+--------------+------------------+
    | "RSPV" | protocol version | message type | payload           |
    | 4 bytes| varint           | varint       | varint len + body |
    +--------+-----------------+--------------+------------------+

The frame is the only self-describing layer; payloads are fixed-schema
messages encoded with the canonical :mod:`repro.encoding` varint layer,
selected by the frame's message type.  Request types occupy ``0x01..``,
their replies ``0x81..`` (request | ``0x80``), and ``0x7F`` is the
protocol-level error reply.

Decoding is strict: unknown magic, truncated fields, trailing bytes and
out-of-range values all raise :class:`~repro.errors.ProtocolError` (a
:class:`~repro.errors.EncodingError`), never ``IndexError`` or
``struct.error`` — a server must survive arbitrary bytes on its socket.

Version negotiation: a client opens with :class:`HelloRequest` listing
the protocol versions it speaks; the server answers with the highest
one it shares (plus the served method and descriptor version) or an
``unsupported-version`` error.  Subsequent frames carry the negotiated
version; frames in an unaccepted version are rejected per frame, so a
stateless server needs no session table.

This module has no dependency on the serving stack — it is pure
bytes-in/bytes-out, which is what lets the same envelopes ride an HTTP
POST body, a unix socket, or the in-process trivial transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Sequence

from repro.api.codes import WIRE_ERRORS
from repro.encoding import Decoder, Encoder
from repro.errors import EncodingError, ProtocolError, UnsupportedVersionError

#: Leading frame bytes: "Repro Shortest Path Verification".
MAGIC = b"RSPV"

#: The protocol version this build speaks (bump on breaking layout
#: changes; additions ride on new message types instead).
PROTOCOL_VERSION = 1

#: Versions a default endpoint accepts.
SUPPORTED_VERSIONS = (PROTOCOL_VERSION,)

# -- message type registry ---------------------------------------------
MSG_HELLO = 0x01
MSG_QUERY = 0x02
MSG_BATCH_QUERY = 0x03
MSG_GET_DESCRIPTOR = 0x04
MSG_PUSH_UPDATES = 0x05
MSG_GET_METRICS = 0x06
MSG_GET_MANIFEST = 0x07

#: Reply types mirror their request with the high bit set.
REPLY_BIT = 0x80
MSG_HELLO_OK = MSG_HELLO | REPLY_BIT
MSG_QUERY_OK = MSG_QUERY | REPLY_BIT
MSG_BATCH_OK = MSG_BATCH_QUERY | REPLY_BIT
MSG_DESCRIPTOR_OK = MSG_GET_DESCRIPTOR | REPLY_BIT
MSG_UPDATE_OK = MSG_PUSH_UPDATES | REPLY_BIT
MSG_METRICS_OK = MSG_GET_METRICS | REPLY_BIT
MSG_MANIFEST_OK = MSG_GET_MANIFEST | REPLY_BIT

#: Protocol-level failure reply (any request may draw one).
MSG_ERROR = 0x7F


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame."""

    version: int
    msg_type: int
    payload: bytes


def encode_frame(msg_type: int, payload: bytes, *,
                 version: int = PROTOCOL_VERSION) -> bytes:
    """Wrap a message payload in the framed envelope."""
    enc = Encoder()
    enc.write_raw(MAGIC)
    enc.write_uint(version)
    enc.write_uint(msg_type)
    enc.write_bytes(payload)
    return enc.getvalue()


def decode_frame(data: bytes, *,
                 accept_versions: Sequence[int] = SUPPORTED_VERSIONS) -> Frame:
    """Strictly decode one frame; inverse of :func:`encode_frame`.

    Raises :class:`ProtocolError` on anything but a well-formed frame,
    and :class:`UnsupportedVersionError` (a :class:`ProtocolError`)
    when the frame is well-formed but speaks an unaccepted version.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise ProtocolError(f"frame must be bytes, got {type(data).__name__}")
    data = bytes(data)
    if len(data) < len(MAGIC) or data[:len(MAGIC)] != MAGIC:
        raise ProtocolError("bad frame magic")
    dec = Decoder(data)
    dec.read_raw(len(MAGIC))
    try:
        version = dec.read_uint()
        msg_type = dec.read_uint()
        payload = dec.read_bytes()
        dec.expect_end()
    except ProtocolError:
        raise
    except EncodingError as exc:
        raise ProtocolError(f"malformed frame: {exc}") from exc
    if version not in accept_versions:
        raise UnsupportedVersionError(version, accept_versions)
    return Frame(version, msg_type, payload)


# ----------------------------------------------------------------------
# Message payloads
# ----------------------------------------------------------------------
class Message:
    """Base for fixed-schema payload messages.

    Subclasses define :attr:`MSG_TYPE`, :meth:`encode` and
    :meth:`decode`; :meth:`to_frame` / :func:`decode_message` bind them
    to the envelope.  ``decode`` is strict: it consumes the entire
    payload and raises only :class:`ProtocolError`.
    """

    MSG_TYPE: ClassVar[int] = 0

    def encode(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def decode(cls, payload: bytes) -> "Message":
        raise NotImplementedError

    def to_frame(self, *, version: int = PROTOCOL_VERSION) -> bytes:
        """This message as one wire frame."""
        return encode_frame(self.MSG_TYPE, self.encode(), version=version)

    @classmethod
    def _decoder(cls, payload: bytes) -> Decoder:
        return Decoder(bytes(payload))

    @classmethod
    def _finish(cls, dec: Decoder) -> None:
        try:
            dec.expect_end()
        except EncodingError as exc:
            raise ProtocolError(f"{cls.__name__}: {exc}") from exc


def _strict(cls_name: str, fn, *args):
    """Run a decode step, normalizing failures to :class:`ProtocolError`."""
    try:
        return fn(*args)
    except ProtocolError:
        raise
    except EncodingError as exc:
        raise ProtocolError(f"{cls_name}: {exc}") from exc


@dataclass(frozen=True)
class HelloRequest(Message):
    """Client handshake: the protocol versions it can speak."""

    versions: tuple = (PROTOCOL_VERSION,)
    MSG_TYPE: ClassVar[int] = MSG_HELLO

    def encode(self) -> bytes:
        return Encoder().write_uint_seq(self.versions).getvalue()

    @classmethod
    def decode(cls, payload: bytes) -> "HelloRequest":
        dec = cls._decoder(payload)
        versions = tuple(_strict(cls.__name__, dec.read_uint_seq))
        cls._finish(dec)
        if not versions:
            raise ProtocolError("HelloRequest lists no versions")
        return cls(versions)


@dataclass(frozen=True)
class HelloReply(Message):
    """Server handshake: chosen version plus what is being served."""

    version: int
    method: str
    descriptor_version: int
    MSG_TYPE: ClassVar[int] = MSG_HELLO_OK

    def encode(self) -> bytes:
        enc = Encoder()
        enc.write_uint(self.version).write_str(self.method)
        enc.write_uint(self.descriptor_version)
        return enc.getvalue()

    @classmethod
    def decode(cls, payload: bytes) -> "HelloReply":
        dec = cls._decoder(payload)
        version = _strict(cls.__name__, dec.read_uint)
        method = _strict(cls.__name__, dec.read_str)
        descriptor_version = _strict(cls.__name__, dec.read_uint)
        cls._finish(dec)
        return cls(version, method, descriptor_version)


@dataclass(frozen=True)
class QueryRequest(Message):
    """One shortest path query ``(source, target)``."""

    source: int
    target: int
    MSG_TYPE: ClassVar[int] = MSG_QUERY

    def encode(self) -> bytes:
        return Encoder().write_uint(self.source).write_uint(self.target).getvalue()

    @classmethod
    def decode(cls, payload: bytes) -> "QueryRequest":
        dec = cls._decoder(payload)
        source = _strict(cls.__name__, dec.read_uint)
        target = _strict(cls.__name__, dec.read_uint)
        cls._finish(dec)
        return cls(source, target)


@dataclass(frozen=True)
class QueryReply(Message):
    """A successful answer: the full response encoding, verbatim.

    ``response_bytes`` is exactly ``QueryResponse.encode()`` as the
    provider produced it — the wire adds framing around the proof, never
    inside it, so a remote verification sees byte-identical input to an
    in-process one.  ``cached`` is advisory (latency attribution).

    ``composite`` is the append-only sharded-serving extension: when
    non-empty it holds one encoded
    :class:`~repro.shard.stitch.CompositeResponse` (a stitched
    cross-shard answer) and ``response_bytes`` is empty.  It is written
    only when present, so single-box replies are byte-identical to
    before, and the decoder defaults a missing tail to ``b""`` —
    replies from older builds still parse.
    """

    response_bytes: bytes
    cached: bool = False
    composite: bytes = b""
    MSG_TYPE: ClassVar[int] = MSG_QUERY_OK

    def encode(self) -> bytes:
        enc = Encoder()
        enc.write_bytes(self.response_bytes).write_bool(self.cached)
        if self.composite:
            enc.write_bytes(self.composite)
        return enc.getvalue()

    @classmethod
    def decode(cls, payload: bytes) -> "QueryReply":
        dec = cls._decoder(payload)
        response_bytes = _strict(cls.__name__, dec.read_bytes)
        cached = _strict(cls.__name__, dec.read_bool)
        composite = b""
        if dec.remaining:
            composite = _strict(cls.__name__, dec.read_bytes)
        cls._finish(dec)
        return cls(response_bytes, cached, composite)


@dataclass(frozen=True)
class BatchQueryRequest(Message):
    """A burst of queries from one client, answered in order.

    ``multiproof`` asks the server to answer with one shared Merkle
    multiproof instead of per-item response bytes (see
    :class:`BatchQueryReply`).  The flag is an append-only extension: it
    is written only when set, so legacy-request bytes are unchanged, and
    the decoder defaults a missing tail to ``False`` — frames from
    older builds still parse.
    """

    pairs: tuple
    multiproof: bool = False
    MSG_TYPE: ClassVar[int] = MSG_BATCH_QUERY

    def encode(self) -> bytes:
        enc = Encoder()
        enc.write_uint(len(self.pairs))
        for source, target in self.pairs:
            enc.write_uint(source).write_uint(target)
        if self.multiproof:
            enc.write_bool(True)
        return enc.getvalue()

    @classmethod
    def decode(cls, payload: bytes) -> "BatchQueryRequest":
        dec = cls._decoder(payload)
        count = _strict(cls.__name__, dec.read_count, 2)
        pairs = tuple(
            (_strict(cls.__name__, dec.read_uint),
             _strict(cls.__name__, dec.read_uint))
            for _ in range(count)
        )
        multiproof = False
        if dec.remaining:
            multiproof = _strict(cls.__name__, dec.read_bool)
        cls._finish(dec)
        return cls(pairs, multiproof)


@dataclass(frozen=True)
class BatchItem:
    """One slot of a batch reply: a response or a structured error."""

    response_bytes: "bytes | None"
    cached: bool = False
    error_code: str = ""
    error_detail: str = ""

    @property
    def ok(self) -> bool:
        """Whether this slot carries a response."""
        return self.response_bytes is not None


@dataclass(frozen=True)
class BatchQueryReply(Message):
    """Per-query outcomes for one burst, in request order.

    Individual failures (an unknown node in one query) do not fail the
    batch: each slot is independently a response or an error code from
    :data:`repro.api.codes.WIRE_ERRORS`.

    ``shared`` is the append-only multiproof extension: when non-empty
    it holds one encoded
    :class:`~repro.core.batch.MultiProofBatch` covering every ok slot
    (whose ``response_bytes`` are then empty placeholders — the client
    expands the shared material back into per-query responses).  It is
    written only when present, so legacy replies are byte-identical to
    before, and the decoder defaults a missing tail to ``b""`` —
    replies from older builds still parse.

    ``composite_slots`` is the second append-only tail (sharded
    serving): the ascending item indices whose ``response_bytes`` hold
    an encoded :class:`~repro.shard.stitch.CompositeResponse` instead
    of a plain ``QueryResponse``.  Because tails are positional, writing
    it forces the ``shared`` tail to be written too (possibly empty);
    a reply with neither tail stays byte-identical to legacy ones.
    """

    items: tuple
    shared: bytes = b""
    composite_slots: tuple = ()
    MSG_TYPE: ClassVar[int] = MSG_BATCH_OK

    def encode(self) -> bytes:
        enc = Encoder()
        enc.write_uint(len(self.items))
        for item in self.items:
            enc.write_bool(item.ok)
            if item.ok:
                enc.write_bytes(item.response_bytes)
                enc.write_bool(item.cached)
            else:
                enc.write_str(item.error_code)
                enc.write_str(item.error_detail)
        if self.shared or self.composite_slots:
            enc.write_bytes(self.shared)
        if self.composite_slots:
            enc.write_uint_seq(self.composite_slots)
        return enc.getvalue()

    @classmethod
    def decode(cls, payload: bytes) -> "BatchQueryReply":
        dec = cls._decoder(payload)
        count = _strict(cls.__name__, dec.read_count, 3)
        items = []
        for _ in range(count):
            if _strict(cls.__name__, dec.read_bool):
                response_bytes = _strict(cls.__name__, dec.read_bytes)
                cached = _strict(cls.__name__, dec.read_bool)
                items.append(BatchItem(response_bytes, cached))
            else:
                code = _strict(cls.__name__, dec.read_str)
                detail = _strict(cls.__name__, dec.read_str)
                items.append(BatchItem(None, False, code, detail))
        shared = b""
        if dec.remaining:
            shared = _strict(cls.__name__, dec.read_bytes)
        composite_slots = ()
        if dec.remaining:
            composite_slots = tuple(_strict(cls.__name__, dec.read_uint_seq))
        cls._finish(dec)
        return cls(tuple(items), shared, composite_slots)


@dataclass(frozen=True)
class DescriptorRequest(Message):
    """Fetch the owner-signed descriptor currently being served."""

    MSG_TYPE: ClassVar[int] = MSG_GET_DESCRIPTOR

    def encode(self) -> bytes:
        return b""

    @classmethod
    def decode(cls, payload: bytes) -> "DescriptorRequest":
        if payload:
            raise ProtocolError(
                f"DescriptorRequest carries no payload, got {len(payload)} bytes"
            )
        return cls()


@dataclass(frozen=True)
class DescriptorReply(Message):
    """The signed descriptor, verbatim (``SignedDescriptor.encode()``)."""

    descriptor_bytes: bytes
    MSG_TYPE: ClassVar[int] = MSG_DESCRIPTOR_OK

    def encode(self) -> bytes:
        return Encoder().write_bytes(self.descriptor_bytes).getvalue()

    @classmethod
    def decode(cls, payload: bytes) -> "DescriptorReply":
        dec = cls._decoder(payload)
        descriptor_bytes = _strict(cls.__name__, dec.read_bytes)
        cls._finish(dec)
        return cls(descriptor_bytes)


@dataclass(frozen=True)
class WireUpdate:
    """One owner mutation on the wire (kind, endpoints, weight)."""

    kind: str
    u: int
    v: int
    weight: float = 0.0


@dataclass(frozen=True)
class UpdatePushRequest(Message):
    """An owner's mutation batch, applied atomically by the server."""

    updates: tuple
    MSG_TYPE: ClassVar[int] = MSG_PUSH_UPDATES

    def encode(self) -> bytes:
        enc = Encoder()
        enc.write_uint(len(self.updates))
        for update in self.updates:
            enc.write_str(update.kind)
            enc.write_uint(update.u).write_uint(update.v)
            enc.write_f64(update.weight)
        return enc.getvalue()

    @classmethod
    def decode(cls, payload: bytes) -> "UpdatePushRequest":
        dec = cls._decoder(payload)
        # Minimal encoded update: empty kind (1) + u (1) + v (1) + f64
        # weight (8) = 11 bytes.  Semantic validation of the kind is the
        # handler's job, so even such a frame must reach it.
        count = _strict(cls.__name__, dec.read_count, 11)
        updates = tuple(
            WireUpdate(
                _strict(cls.__name__, dec.read_str),
                _strict(cls.__name__, dec.read_uint),
                _strict(cls.__name__, dec.read_uint),
                _strict(cls.__name__, dec.read_f64),
            )
            for _ in range(count)
        )
        cls._finish(dec)
        if not updates:
            raise ProtocolError("UpdatePushRequest carries no updates")
        return cls(updates)


@dataclass(frozen=True)
class UpdateReply(Message):
    """Outcome of an absorbed update batch (mirrors ``UpdateReport``)."""

    mode: str
    mutations: int
    leaves_patched: int
    trees_rebuilt: int
    seconds: float
    version: int
    MSG_TYPE: ClassVar[int] = MSG_UPDATE_OK

    def encode(self) -> bytes:
        enc = Encoder()
        enc.write_str(self.mode).write_uint(self.mutations)
        enc.write_uint(self.leaves_patched).write_uint(self.trees_rebuilt)
        enc.write_f64(self.seconds).write_uint(self.version)
        return enc.getvalue()

    @classmethod
    def decode(cls, payload: bytes) -> "UpdateReply":
        dec = cls._decoder(payload)
        mode = _strict(cls.__name__, dec.read_str)
        mutations = _strict(cls.__name__, dec.read_uint)
        leaves_patched = _strict(cls.__name__, dec.read_uint)
        trees_rebuilt = _strict(cls.__name__, dec.read_uint)
        seconds = _strict(cls.__name__, dec.read_f64)
        version = _strict(cls.__name__, dec.read_uint)
        cls._finish(dec)
        return cls(mode, mutations, leaves_patched, trees_rebuilt,
                   seconds, version)


@dataclass(frozen=True)
class MetricsRequest(Message):
    """Fetch the server's current metrics window."""

    MSG_TYPE: ClassVar[int] = MSG_GET_METRICS

    def encode(self) -> bytes:
        return b""

    @classmethod
    def decode(cls, payload: bytes) -> "MetricsRequest":
        if payload:
            raise ProtocolError(
                f"MetricsRequest carries no payload, got {len(payload)} bytes"
            )
        return cls()


@dataclass(frozen=True)
class MetricsReply(Message):
    """A frozen metrics window (mirrors ``MetricsSnapshot``).

    The four ``cache_*`` counters and the trailing ``p99_ms`` are
    additive extensions: they ride at the end of the payload, and the
    decoder accepts every older prefix layout (defaulting the missing
    tail to zero) so frames from older builds still parse.  Additions
    must stay append-only — anything else is a breaking layout change
    and bumps the protocol version.
    """

    requests: int
    elapsed_seconds: float
    cache_hits: int
    cache_misses: int
    proof_bytes: int
    p50_ms: float
    p95_ms: float
    updates: int = 0
    update_seconds: float = 0.0
    cache_evictions: int = 0
    cache_invalidations: int = 0
    cache_entries: int = 0
    cache_capacity: int = 0
    p99_ms: float = 0.0
    MSG_TYPE: ClassVar[int] = MSG_METRICS_OK

    def encode(self) -> bytes:
        enc = Encoder()
        enc.write_uint(self.requests).write_f64(self.elapsed_seconds)
        enc.write_uint(self.cache_hits).write_uint(self.cache_misses)
        enc.write_uint(self.proof_bytes)
        enc.write_f64(self.p50_ms).write_f64(self.p95_ms)
        enc.write_uint(self.updates).write_f64(self.update_seconds)
        enc.write_uint(self.cache_evictions)
        enc.write_uint(self.cache_invalidations)
        enc.write_uint(self.cache_entries)
        enc.write_uint(self.cache_capacity)
        enc.write_f64(self.p99_ms)
        return enc.getvalue()

    @classmethod
    def decode(cls, payload: bytes) -> "MetricsReply":
        dec = cls._decoder(payload)
        fields = [
            _strict(cls.__name__, dec.read_uint),
            _strict(cls.__name__, dec.read_f64),
            _strict(cls.__name__, dec.read_uint),
            _strict(cls.__name__, dec.read_uint),
            _strict(cls.__name__, dec.read_uint),
            _strict(cls.__name__, dec.read_f64),
            _strict(cls.__name__, dec.read_f64),
            _strict(cls.__name__, dec.read_uint),
            _strict(cls.__name__, dec.read_f64),
        ]
        if dec.remaining:
            fields.extend(
                _strict(cls.__name__, dec.read_uint) for _ in range(4)
            )
        if dec.remaining:
            fields.append(_strict(cls.__name__, dec.read_f64))
        cls._finish(dec)
        return cls(*fields)


@dataclass(frozen=True)
class ManifestRequest(Message):
    """Fetch the owner-signed shard manifest a router serves under."""

    MSG_TYPE: ClassVar[int] = MSG_GET_MANIFEST

    def encode(self) -> bytes:
        return b""

    @classmethod
    def decode(cls, payload: bytes) -> "ManifestRequest":
        if payload:
            raise ProtocolError(
                f"ManifestRequest carries no payload, got {len(payload)} bytes"
            )
        return cls()


@dataclass(frozen=True)
class ManifestReply(Message):
    """The signed shard manifest, verbatim (``ShardManifest.encode()``).

    Like :class:`DescriptorReply`, the wire carries the owner-signed
    bytes untouched — the client decodes and signature-checks them
    itself, so a router cannot tamper with the partition it advertises.
    """

    manifest_bytes: bytes
    MSG_TYPE: ClassVar[int] = MSG_MANIFEST_OK

    def encode(self) -> bytes:
        return Encoder().write_bytes(self.manifest_bytes).getvalue()

    @classmethod
    def decode(cls, payload: bytes) -> "ManifestReply":
        dec = cls._decoder(payload)
        manifest_bytes = _strict(cls.__name__, dec.read_bytes)
        cls._finish(dec)
        return cls(manifest_bytes)


@dataclass(frozen=True)
class ErrorMessage(Message):
    """A protocol-level failure reply.

    ``code`` is one of :data:`repro.api.codes.WIRE_ERRORS`; ``detail``
    is human-readable and carries no stable contract.
    """

    code: str
    detail: str = ""
    MSG_TYPE: ClassVar[int] = MSG_ERROR

    def encode(self) -> bytes:
        return Encoder().write_str(self.code).write_str(self.detail).getvalue()

    @classmethod
    def decode(cls, payload: bytes) -> "ErrorMessage":
        dec = cls._decoder(payload)
        code = _strict(cls.__name__, dec.read_str)
        detail = _strict(cls.__name__, dec.read_str)
        cls._finish(dec)
        return cls(code, detail)


#: Message classes by frame type, for generic dispatch.
MESSAGE_TYPES = {
    cls.MSG_TYPE: cls
    for cls in (
        HelloRequest, HelloReply, QueryRequest, QueryReply,
        BatchQueryRequest, BatchQueryReply, DescriptorRequest,
        DescriptorReply, UpdatePushRequest, UpdateReply,
        MetricsRequest, MetricsReply, ManifestRequest, ManifestReply,
        ErrorMessage,
    )
}


def decode_message(frame: Frame) -> Message:
    """Decode a frame's payload per its message type.

    Raises :class:`ProtocolError` for unknown types or malformed
    payloads.
    """
    cls = MESSAGE_TYPES.get(frame.msg_type)
    if cls is None:
        raise ProtocolError(f"unknown message type 0x{frame.msg_type:02x}")
    return cls.decode(frame.payload)


def error_frame(code: str, detail: str = "", *,
                version: int = PROTOCOL_VERSION) -> bytes:
    """Convenience: an :class:`ErrorMessage` wrapped in a frame."""
    if code not in WIRE_ERRORS:
        raise ProtocolError(f"unregistered wire error code {code!r}")
    return ErrorMessage(code, detail).to_frame(version=version)
