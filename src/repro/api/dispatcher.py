"""Transport-neutral request dispatch: frames in, frames out.

:class:`Dispatcher` is the single place requests become serving calls.
Every frontend — the in-process trivial transport, the HTTP server, a
test poking bytes directly — hands it one request frame and ships back
whatever frame it returns.  The dispatcher owns the protocol concerns
(version acceptance, strict decoding, the error taxonomy); the wrapped
:class:`~repro.service.server.ProofServer` owns the serving concerns
(cache, coalescing, the update gate).  Keeping the split strict is what
makes transports interchangeable: nothing below this layer knows
whether bytes crossed a network.

A dispatcher never raises on malformed input: protocol failures become
:class:`~repro.api.envelope.ErrorMessage` frames with codes from
:mod:`repro.api.codes`, because the peer that sent garbage is exactly
the peer that still needs a well-formed reply.

Update pushes are only honoured when the dispatcher was built with the
owner's ``update_signer`` — a provider-side deployment (which must not
hold signing keys) leaves it unset and answers pushes with
``updates-not-supported``.
"""

from __future__ import annotations

from repro.api import codes
from repro.api.envelope import (
    BatchItem,
    BatchQueryReply,
    BatchQueryRequest,
    DescriptorReply,
    DescriptorRequest,
    ErrorMessage,
    HelloReply,
    HelloRequest,
    MetricsReply,
    MetricsRequest,
    QueryReply,
    QueryRequest,
    SUPPORTED_VERSIONS,
    UpdatePushRequest,
    UpdateReply,
    decode_frame,
    decode_message,
    error_frame,
)
from repro.crypto.signer import Signer
from repro.errors import ProtocolError, ReproError, UnsupportedVersionError
from repro.service.server import ProofServer, UpdateRequest


class Dispatcher:
    """Route request frames to a :class:`ProofServer`, reply with frames.

    >>> dispatcher = Dispatcher(server)                  # doctest: +SKIP
    >>> reply = dispatcher.dispatch(QueryRequest(3, 9).to_frame())
    ...                                                  # doctest: +SKIP
    """

    def __init__(self, server: ProofServer, *,
                 update_signer: "Signer | None" = None,
                 accept_versions=SUPPORTED_VERSIONS) -> None:
        self.server = server
        self.update_signer = update_signer
        self.accept_versions = tuple(accept_versions)

    # ------------------------------------------------------------------
    def dispatch(self, frame_bytes: bytes) -> bytes:
        """Handle one request frame; always returns a reply frame."""
        try:
            frame = decode_frame(frame_bytes,
                                 accept_versions=self.accept_versions)
        except UnsupportedVersionError as exc:
            return error_frame(codes.E_UNSUPPORTED_VERSION, str(exc))
        except ProtocolError as exc:
            return error_frame(codes.E_MALFORMED_FRAME, str(exc))
        try:
            message = decode_message(frame)
        except ProtocolError as exc:
            code = (codes.E_UNKNOWN_MESSAGE if "unknown message type" in str(exc)
                    else codes.E_MALFORMED_FRAME)
            return error_frame(code, str(exc), version=frame.version)
        try:
            reply = self.handle(message)
        except ReproError as exc:  # a handler's own typed failure
            reply = ErrorMessage(codes.E_BAD_REQUEST, str(exc))
        except Exception as exc:  # noqa: BLE001 — a server must not crash
            reply = ErrorMessage(codes.E_INTERNAL,
                                 f"{type(exc).__name__}: {exc}")
        return reply.to_frame(version=frame.version)

    # ------------------------------------------------------------------
    def handle(self, message):
        """Dispatch one decoded message to its handler; returns a reply."""
        handler = self._HANDLERS.get(type(message))
        if handler is None:
            return ErrorMessage(
                codes.E_UNKNOWN_MESSAGE,
                f"{type(message).__name__} is not a request",
            )
        return handler(self, message)

    def _handle_hello(self, message: HelloRequest):
        shared = [v for v in message.versions if v in self.accept_versions]
        if not shared:
            return ErrorMessage(
                codes.E_UNSUPPORTED_VERSION,
                f"no shared protocol version: client speaks "
                f"{sorted(message.versions)}, server accepts "
                f"{sorted(self.accept_versions)}",
            )
        return HelloReply(
            version=max(shared),
            method=self.server.method.name,
            descriptor_version=self.server.descriptor_version,
        )

    def _handle_query(self, message: QueryRequest):
        served = self.server.answer(message.source, message.target)
        if not served.ok:
            return ErrorMessage(codes.E_QUERY_FAILED, served.error)
        return QueryReply(served.response.encode(), cached=served.cached)

    def _handle_batch(self, message: BatchQueryRequest):
        served = self.server.answer_many(list(message.pairs))
        if message.multiproof:
            reply = self._multiproof_reply(message, served)
            if reply is not None:
                return reply
        items = tuple(
            BatchItem(item.response.encode(), item.cached) if item.ok
            else BatchItem(None, False, codes.E_QUERY_FAILED, item.error)
            for item in served
        )
        return BatchQueryReply(items)

    def _multiproof_reply(self, message: BatchQueryRequest, served):
        """One shared multiproof for the batch's ok slots, or ``None``.

        ``None`` means "answer in the legacy per-item layout instead":
        nothing succeeded, or the ok responses cannot share one
        multiproof (e.g. an update landed mid-batch and they span
        descriptor versions).  Falling back is always sound — the
        client asked for an optimisation, not a different contract.
        """
        from repro.core.batch import combine_multiproof

        ok_pairs = [pair for pair, item in zip(message.pairs, served)
                    if item.ok]
        if not ok_pairs:
            return None
        responses = [item.response for item in served if item.ok]
        try:
            shared = combine_multiproof(ok_pairs, responses).encode()
        except ReproError:
            return None
        items = tuple(
            BatchItem(b"", item.cached) if item.ok
            else BatchItem(None, False, codes.E_QUERY_FAILED, item.error)
            for item in served
        )
        return BatchQueryReply(items, shared=shared)

    def _handle_descriptor(self, message: DescriptorRequest):
        return DescriptorReply(self.server.method.descriptor.encode())

    def _handle_updates(self, message: UpdatePushRequest):
        if self.update_signer is None:
            return ErrorMessage(
                codes.E_UPDATES_DISABLED,
                "this endpoint serves proofs only; it holds no signing key",
            )
        updates = [UpdateRequest(u.kind, u.u, u.v, u.weight)
                   for u in message.updates]
        try:
            report = self.server.apply_updates(updates, self.update_signer)
        except ReproError as exc:
            # The server rolled back; old state keeps serving.
            return ErrorMessage(codes.E_UPDATE_FAILED, str(exc))
        return UpdateReply(
            mode=report.mode,
            mutations=report.mutations,
            leaves_patched=report.leaves_patched,
            trees_rebuilt=report.trees_rebuilt,
            seconds=report.seconds,
            version=report.version,
        )

    def _handle_metrics(self, message: MetricsRequest):
        snapshot = self.server.snapshot()
        return MetricsReply(
            requests=snapshot.requests,
            elapsed_seconds=snapshot.elapsed_seconds,
            cache_hits=snapshot.cache_hits,
            cache_misses=snapshot.cache_misses,
            proof_bytes=snapshot.proof_bytes,
            p50_ms=snapshot.p50_ms,
            p95_ms=snapshot.p95_ms,
            updates=snapshot.updates,
            update_seconds=snapshot.update_seconds,
            cache_evictions=snapshot.cache_evictions,
            cache_invalidations=snapshot.cache_invalidations,
            cache_entries=snapshot.cache_entries,
            cache_capacity=snapshot.cache_capacity,
            p99_ms=snapshot.p99_ms,
        )

    def metrics_json(self) -> dict:
        """The current metrics window as a JSON-ready dict.

        This is what ``GET /metrics`` on the HTTP frontend serves; the
        keys match :meth:`MetricsSnapshot.as_dict`, so dashboards read
        the same record whether they scrape HTTP or the wire frame —
        plus a ``"phases"`` list (closed soak-phase windows, oldest
        first) that only the JSON surface carries.
        """
        record = self.server.snapshot().as_dict()
        record["phases"] = [
            phase.as_dict() for phase in self.server.metrics.phases
        ]
        return record

    _HANDLERS = {
        HelloRequest: _handle_hello,
        QueryRequest: _handle_query,
        BatchQueryRequest: _handle_batch,
        DescriptorRequest: _handle_descriptor,
        UpdatePushRequest: _handle_updates,
        MetricsRequest: _handle_metrics,
    }
