"""The shard manifest: an owner-signed map of the partition itself.

A sharded deployment has k signed descriptors — one per shard — but
nothing yet says *these k descriptors together are the partition of
this graph*.  The manifest closes that gap: it is a format-versioned,
owner-signed record binding

* each shard's **node ranges** (who owns which ids),
* each shard's **boundary nodes** (the only legal stitch junctions),
* each shard's **descriptor digest** (SHA-256 over the encoded signed
  descriptor — the exact bytes a response must carry),

under one signature at one graph version.  A client holding nothing but
the owner's public key verifies the manifest once, then checks every
composite response against it: a swapped shard root, a stale descriptor
replayed next to fresh siblings, or a junction outside the declared
boundary set all fail by digest or membership — no trust in the router
required.

On disk the manifest is its own tiny artifact (magic ``RSPM``), a
sibling of the per-shard ``.rspv`` packs; on the wire it travels
verbatim inside a :class:`~repro.api.envelope.ManifestReply`.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass, replace

from repro.api import codes
from repro.core.framework import VerificationResult
from repro.encoding import Decoder, Encoder
from repro.errors import ArtifactError, EncodingError

#: Leading file bytes: "Repro Shortest Path Manifest".
MANIFEST_MAGIC = b"RSPM"

#: Manifest layout version (bump on breaking changes; additions must
#: be new trailing fields so older manifests keep decoding).
MANIFEST_FORMAT_VERSION = 1

#: Digest algorithm binding descriptors into the manifest.
_DIGEST = hashlib.sha256
DIGEST_BYTES = _DIGEST(b"").digest_size


def descriptor_digest(descriptor_bytes: bytes) -> bytes:
    """The manifest's pin for one encoded signed descriptor."""
    return _DIGEST(descriptor_bytes).digest()


def _ranges_of(sorted_ids: "tuple[int, ...]") \
        -> "tuple[tuple[int, int], ...]":
    """Maximal runs of consecutive ids, as inclusive ``(lo, hi)`` pairs."""
    ranges: "list[tuple[int, int]]" = []
    for node_id in sorted_ids:
        if ranges and node_id == ranges[-1][1] + 1:
            ranges[-1] = (ranges[-1][0], node_id)
        else:
            ranges.append((node_id, node_id))
    return tuple(ranges)


@dataclass(frozen=True)
class ShardEntry:
    """One shard's row: digest pin, owned id ranges, boundary nodes."""

    descriptor_digest: bytes
    id_ranges: tuple[tuple[int, int], ...]
    boundary: tuple[int, ...]

    @classmethod
    def from_members(cls, digest: bytes, members, boundary) -> "ShardEntry":
        """Build a row from a sorted core member list."""
        return cls(descriptor_digest=digest,
                   id_ranges=_ranges_of(tuple(members)),
                   boundary=tuple(boundary))

    def owns(self, node_id: int) -> bool:
        """Whether *node_id* falls inside this shard's id ranges."""
        position = bisect_right(self.id_ranges, (node_id, float("inf")))
        if position == 0:
            return False
        lo, hi = self.id_ranges[position - 1]
        return lo <= node_id <= hi

    def is_boundary(self, node_id: int) -> bool:
        """Whether *node_id* is one of this shard's declared junctions."""
        position = bisect_right(self.boundary, node_id)
        return position > 0 and self.boundary[position - 1] == node_id

    @property
    def num_nodes(self) -> int:
        """Core size (nodes owned by this shard)."""
        return sum(hi - lo + 1 for lo, hi in self.id_ranges)


@dataclass(frozen=True)
class ShardManifest:
    """The owner-signed partition record (see module docstring).

    ``version`` is the graph mutation version every shard descriptor is
    signed at — the manifest refuses to speak for a mixed-version
    deployment, which is what makes the stale-sibling replay checkable.
    """

    method: str
    version: int
    strategy: str
    entries: tuple[ShardEntry, ...]
    signature: bytes = b""

    @property
    def num_shards(self) -> int:
        """How many shards the manifest covers."""
        return len(self.entries)

    @property
    def num_boundary_nodes(self) -> int:
        """Total declared boundary nodes across all shards."""
        return sum(len(entry.boundary) for entry in self.entries)

    def shard_of(self, node_id: int) -> "int | None":
        """The owning shard id, or ``None`` for uncovered ids."""
        for shard_id, entry in enumerate(self.entries):
            if entry.owns(node_id):
                return shard_id
        return None

    # -- canonical bytes -------------------------------------------------
    def message(self) -> bytes:
        """The exact bytes the owner signs."""
        enc = Encoder()
        enc.write_uint(MANIFEST_FORMAT_VERSION)
        enc.write_str(self.method)
        enc.write_uint(self.version)
        enc.write_str(self.strategy)
        enc.write_uint(len(self.entries))
        for entry in self.entries:
            enc.write_bytes(entry.descriptor_digest)
            enc.write_uint_seq([b for pair in entry.id_ranges for b in pair])
            enc.write_uint_seq(entry.boundary)
        return enc.getvalue()

    def encode(self) -> bytes:
        """Serialize: the signed message verbatim, then the signature."""
        return (Encoder().write_bytes(self.message())
                .write_bytes(self.signature).getvalue())

    @classmethod
    def decode(cls, data: bytes) -> "ShardManifest":
        """Strict inverse of :meth:`encode`.

        Raises :class:`~repro.errors.EncodingError` on any structural
        defect — truncation, a non-current format version, overlapping
        or unsorted ranges, a boundary node outside its own shard.
        Signature *validity* is not checked here (that needs the public
        key); :func:`verify_manifest` does that.
        """
        outer = Decoder(bytes(data))
        message = outer.read_bytes()
        signature = outer.read_bytes()
        outer.expect_end()
        manifest = cls._parse_message(message)
        return replace(manifest, signature=signature)

    @classmethod
    def _parse_message(cls, message: bytes) -> "ShardManifest":
        dec = Decoder(message)
        format_version = dec.read_uint()
        if format_version != MANIFEST_FORMAT_VERSION:
            raise EncodingError(
                f"unsupported manifest format version {format_version} "
                f"(this build speaks {MANIFEST_FORMAT_VERSION})"
            )
        method = dec.read_str()
        version = dec.read_uint()
        strategy = dec.read_str()
        count = dec.read_count(DIGEST_BYTES + 2)
        if count < 1:
            raise EncodingError("manifest covers no shards")
        entries: "list[ShardEntry]" = []
        for shard_id in range(count):
            digest = dec.read_bytes()
            if len(digest) != DIGEST_BYTES:
                raise EncodingError(
                    f"shard {shard_id}: descriptor digest is "
                    f"{len(digest)} bytes, expected {DIGEST_BYTES}"
                )
            flat = dec.read_uint_seq()
            if not flat or len(flat) % 2:
                raise EncodingError(
                    f"shard {shard_id}: malformed id-range list"
                )
            ranges = tuple(
                (flat[i], flat[i + 1]) for i in range(0, len(flat), 2)
            )
            previous = -1
            for lo, hi in ranges:
                if lo > hi or lo <= previous:
                    raise EncodingError(
                        f"shard {shard_id}: id ranges must be ascending "
                        f"and disjoint"
                    )
                previous = hi
            boundary = tuple(dec.read_uint_seq())
            entry = ShardEntry(digest, ranges, boundary)
            if list(boundary) != sorted(set(boundary)):
                raise EncodingError(
                    f"shard {shard_id}: boundary list must be sorted "
                    f"and unique"
                )
            for node_id in boundary:
                if not entry.owns(node_id):
                    raise EncodingError(
                        f"shard {shard_id}: boundary node {node_id} is "
                        f"outside the shard's own id ranges"
                    )
            entries.append(entry)
        dec.expect_end()
        claimed: "list[tuple[int, int]]" = sorted(
            pair for entry in entries for pair in entry.id_ranges
        )
        for (lo_a, hi_a), (lo_b, _) in zip(claimed, claimed[1:]):
            if lo_b <= hi_a:
                raise EncodingError(
                    f"shards claim overlapping id ranges "
                    f"({lo_a}..{hi_a} and {lo_b}..)"
                )
        return cls(method=method, version=version, strategy=strategy,
                   entries=tuple(entries))


def build_manifest(plan, methods, signer) -> ShardManifest:
    """Assemble and sign the manifest for one sharded publish.

    *plan* is the :class:`~repro.shard.partition.ShardPlan`; *methods*
    the built per-shard verification methods in shard order.  All shard
    descriptors must share one method name and one graph version — a
    mixed build is an owner-side bug, refused loudly.
    """
    if len(methods) != plan.num_shards:
        raise ArtifactError(
            f"plan has {plan.num_shards} shards but {len(methods)} "
            f"methods were built"
        )
    names = {m.name for m in methods}
    versions = {m.descriptor.version for m in methods}
    if len(names) != 1 or len(versions) != 1:
        raise ArtifactError(
            f"shard builds disagree (methods {sorted(names)}, "
            f"versions {sorted(versions)}); a manifest signs one uniform "
            f"deployment"
        )
    entries = tuple(
        ShardEntry.from_members(
            descriptor_digest(method.descriptor.encode()),
            plan.members[shard_id],
            plan.boundary[shard_id],
        )
        for shard_id, method in enumerate(methods)
    )
    manifest = ShardManifest(method=names.pop(), version=versions.pop(),
                             strategy=plan.strategy, entries=entries)
    return sign_manifest(manifest, signer)


def sign_manifest(manifest: ShardManifest, signer) -> ShardManifest:
    """A copy of *manifest* signed by the owner."""
    return replace(manifest, signature=signer.sign(manifest.message()))


def verify_manifest(manifest: ShardManifest, verify_signature, *,
                    min_version: "int | None" = None) -> VerificationResult:
    """Check the owner signature and the freshness floor.

    Structural validity is :meth:`ShardManifest.decode`'s job; this is
    the trust check a client runs once per fetched manifest.
    """
    if not manifest.signature or \
            not verify_signature(manifest.message(), manifest.signature):
        return VerificationResult.failure(
            codes.BAD_SIGNATURE,
            "shard manifest signature does not verify",
        )
    if min_version is not None and manifest.version < min_version:
        return VerificationResult.failure(
            codes.STALE_DESCRIPTOR,
            f"manifest signs graph version {manifest.version}, "
            f"freshness floor is {min_version}",
        )
    return VerificationResult.success()


# ----------------------------------------------------------------------
# File form
# ----------------------------------------------------------------------
def save_manifest(manifest: ShardManifest, path: str) -> int:
    """Write the manifest artifact; returns the byte size."""
    data = MANIFEST_MAGIC + manifest.encode()
    try:
        with open(path, "wb") as outfile:
            outfile.write(data)
    except OSError as exc:
        raise ArtifactError(f"cannot write manifest {path!r}: {exc}") from exc
    return len(data)


def load_manifest(path: str) -> ShardManifest:
    """Read and structurally validate a manifest artifact."""
    try:
        with open(path, "rb") as infile:
            data = infile.read()
    except OSError as exc:
        raise ArtifactError(f"cannot read manifest {path!r}: {exc}") from exc
    if not data.startswith(MANIFEST_MAGIC):
        raise ArtifactError(
            f"{path!r} is not a shard manifest (bad magic)"
        )
    try:
        return ShardManifest.decode(data[len(MANIFEST_MAGIC):])
    except EncodingError as exc:
        raise ArtifactError(f"corrupt shard manifest {path!r}: {exc}") from exc


def is_manifest(path: str) -> bool:
    """Sniff whether *path* is a shard manifest file."""
    try:
        with open(path, "rb") as infile:
            return infile.read(len(MANIFEST_MAGIC)) == MANIFEST_MAGIC
    except OSError:
        return False


def manifest_info(path: str) -> dict:
    """Operator-facing summary of a manifest file (``repro-spv info``)."""
    manifest = load_manifest(path)
    return {
        "kind": "shard-manifest",
        "method": manifest.method,
        "version": manifest.version,
        "strategy": manifest.strategy,
        "shards": manifest.num_shards,
        "boundary_nodes": manifest.num_boundary_nodes,
        "entries": [
            {
                "shard": shard_id,
                "descriptor_digest": entry.descriptor_digest.hex(),
                "nodes": entry.num_nodes,
                "boundary_nodes": len(entry.boundary),
            }
            for shard_id, entry in enumerate(manifest.entries)
        ],
    }
