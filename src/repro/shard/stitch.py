"""Composite responses: per-shard sub-path proofs stitched at junctions.

A cross-shard query is answered as an ordered list of **segments**.
Segment *i* is one complete, independently verifiable
:class:`~repro.core.proofs.QueryResponse` from one shard: it starts at
the previous junction (or the query source), runs through that shard's
territory, and ends at the next junction — a declared boundary node
owned by the *following* segment's shard, reached over a cut edge that
both shards' graphs carry.

Why stitching is sound: a subpath of a shortest path is itself a
shortest path, and every segment of the global optimum lies entirely
inside its shard's core+halo graph (see
:mod:`repro.shard.partition`), so an honest shard's answer for the
segment pair verifies under the *unchanged* per-method machinery and
costs exactly the global segment cost.  The composite verifier
therefore only adds the cross-shard glue checks:

1. the manifest is owner-signed and fresh (once, cached by the client);
2. every segment's embedded descriptor matches the manifest's digest
   pin for its shard — which kills swapped roots and stale per-shard
   replays in one check;
3. every segment verifies as a standalone response for its chained
   ``(source, target)`` pair — signature, Merkle roots, path integrity,
   shard-local optimality;
4. junctions chain (segment *i* ends where segment *i+1* starts), each
   junction is a declared boundary node owned by the next segment's
   shard, and adjacent segments name different shards;
5. the concatenated segment paths equal the composite's claimed
   end-to-end path, repeat no node, and their costs sum to the claimed
   total.

**Trust model limit, stated plainly:** the verdict certifies that the
answer is a real path of the claimed cost whose every segment is
optimal *within its shard* and whose handoffs are owner-declared
junctions.  It does not certify that the router picked the globally
optimal junction sequence — that needs an authenticated cross-shard
distance directory (the HYP hyperedge idea lifted one level), which is
ROADMAP follow-up work, not a property this format quietly claims.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import codes
from repro.core.framework import Client, VerificationResult, distances_close
from repro.core.proofs import QueryResponse
from repro.encoding import Decoder, Encoder
from repro.errors import EncodingError
from repro.shard.manifest import (
    ShardManifest,
    descriptor_digest,
    verify_manifest,
)

#: Composite layout version (additions ride at the tail, append-only,
#: exactly like the wire envelope's extension rule).
COMPOSITE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class CompositeSegment:
    """One shard's contribution: who answered, and its response verbatim."""

    shard_id: int
    response_bytes: bytes


@dataclass(frozen=True)
class CompositeResponse:
    """A stitched cross-shard answer, as assembled by the router.

    ``path_nodes`` / ``path_cost`` are the claimed end-to-end result —
    exactly what a single-box response would report — and the segments
    are the evidence the claim is checked against.
    """

    source: int
    target: int
    path_nodes: tuple[int, ...]
    path_cost: float
    segments: tuple[CompositeSegment, ...]

    def encode(self) -> bytes:
        """Serialize for the envelope's ``composite`` field."""
        enc = Encoder()
        enc.write_uint(COMPOSITE_FORMAT_VERSION)
        enc.write_uint(self.source).write_uint(self.target)
        enc.write_uint_seq(self.path_nodes)
        enc.write_f64(self.path_cost)
        enc.write_uint(len(self.segments))
        for segment in self.segments:
            enc.write_uint(segment.shard_id)
            enc.write_bytes(segment.response_bytes)
        return enc.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "CompositeResponse":
        """Strict inverse of :meth:`encode` (EncodingError on defects)."""
        dec = Decoder(bytes(data))
        format_version = dec.read_uint()
        if format_version != COMPOSITE_FORMAT_VERSION:
            raise EncodingError(
                f"unsupported composite format version {format_version} "
                f"(this build speaks {COMPOSITE_FORMAT_VERSION})"
            )
        source = dec.read_uint()
        target = dec.read_uint()
        path_nodes = tuple(dec.read_uint_seq())
        path_cost = dec.read_f64()
        count = dec.read_count(2)
        if count < 2:
            raise EncodingError(
                f"a composite needs >= 2 segments, got {count} "
                f"(single-shard answers ride as plain replies)"
            )
        segments = tuple(
            CompositeSegment(dec.read_uint(), dec.read_bytes())
            for _ in range(count)
        )
        dec.expect_end()
        return cls(source, target, path_nodes, path_cost, segments)


def _failure(reason: str, detail: str) -> VerificationResult:
    return VerificationResult.failure(reason, detail)


def verify_composite(source: int, target: int, composite_bytes: bytes,
                     manifest: ShardManifest, verify_signature, *,
                     min_version: "int | None" = None,
                     manifest_verified: bool = False) -> VerificationResult:
    """Verify a stitched response end to end against a shard manifest.

    Everything is a verdict, never an exception: undecodable composite
    bytes, broken segments and glue violations all come back as typed
    :class:`~repro.core.framework.VerificationResult` failures.  Pass
    ``manifest_verified=True`` when the manifest's signature/freshness
    was already checked (a client verifies once per fetched manifest,
    not once per query).
    """
    if not manifest_verified:
        manifest_verdict = verify_manifest(manifest, verify_signature,
                                           min_version=min_version)
        if not manifest_verdict.ok:
            return manifest_verdict
    try:
        composite = CompositeResponse.decode(composite_bytes)
    except EncodingError as exc:
        return _failure(codes.MALFORMED_RESPONSE,
                        f"composite bytes do not decode: {exc}")
    if composite.source != source or composite.target != target:
        return _failure(
            codes.ENDPOINT_MISMATCH,
            f"composite answers ({composite.source}, {composite.target}) "
            f"for query ({source}, {target})",
        )

    # -- per-segment decode + digest pin -------------------------------
    responses: "list[QueryResponse]" = []
    for index, segment in enumerate(composite.segments):
        if not 0 <= segment.shard_id < manifest.num_shards:
            return _failure(
                codes.UNKNOWN_SHARD,
                f"segment {index} names shard {segment.shard_id}; the "
                f"manifest covers {manifest.num_shards} shards",
            )
        try:
            response = QueryResponse.decode(segment.response_bytes)
        except EncodingError as exc:
            return _failure(codes.MALFORMED_RESPONSE,
                            f"segment {index} does not decode: {exc}")
        entry = manifest.entries[segment.shard_id]
        digest = descriptor_digest(response.descriptor.encode())
        if digest != entry.descriptor_digest:
            return _failure(
                codes.SHARD_DESCRIPTOR_MISMATCH,
                f"segment {index}: descriptor digest {digest.hex()[:16]}… "
                f"is not what the manifest pins for shard "
                f"{segment.shard_id}",
            )
        if response.method != manifest.method:
            return _failure(
                codes.METHOD_MISMATCH,
                f"segment {index} speaks method {response.method!r}; the "
                f"manifest declares {manifest.method!r}",
            )
        if not response.path_nodes:
            return _failure(codes.EMPTY_PATH,
                            f"segment {index} reports no path")
        responses.append(response)

    # -- junction chaining ---------------------------------------------
    segments = composite.segments
    for index, response in enumerate(responses):
        expected_source = source if index == 0 \
            else responses[index - 1].path_nodes[-1]
        if response.path_nodes[0] != expected_source:
            return _failure(
                codes.JUNCTION_MISMATCH,
                f"segment {index} starts at {response.path_nodes[0]}, "
                f"expected {expected_source}",
            )
        own_entry = manifest.entries[segments[index].shard_id]
        if not own_entry.owns(response.path_nodes[0]):
            return _failure(
                codes.JUNCTION_MISMATCH,
                f"segment {index} starts at node "
                f"{response.path_nodes[0]}, which shard "
                f"{segments[index].shard_id} does not own",
            )
        last = index == len(responses) - 1
        junction = response.path_nodes[-1]
        if last:
            if junction != target:
                return _failure(
                    codes.JUNCTION_MISMATCH,
                    f"final segment ends at {junction}, not the query "
                    f"target {target}",
                )
            continue
        next_shard = segments[index + 1].shard_id
        if next_shard == segments[index].shard_id:
            return _failure(
                codes.JUNCTION_MISMATCH,
                f"segments {index} and {index + 1} both name shard "
                f"{next_shard}; a stitch must cross shards",
            )
        next_entry = manifest.entries[next_shard]
        if not next_entry.owns(junction):
            return _failure(
                codes.JUNCTION_MISMATCH,
                f"junction {junction} after segment {index} is not owned "
                f"by shard {next_shard}",
            )
        if not next_entry.is_boundary(junction):
            return _failure(
                codes.JUNCTION_MISMATCH,
                f"junction {junction} is not a declared boundary node of "
                f"shard {next_shard}",
            )

    # -- the stitched claim --------------------------------------------
    stitched: "list[int]" = list(responses[0].path_nodes)
    for response in responses[1:]:
        stitched.extend(response.path_nodes[1:])
    if tuple(stitched) != composite.path_nodes:
        return _failure(
            codes.STITCH_MISMATCH,
            f"concatenated segment paths ({len(stitched)} nodes) disagree "
            f"with the claimed end-to-end path "
            f"({len(composite.path_nodes)} nodes)",
        )
    if len(set(stitched)) != len(stitched):
        return _failure(codes.PATH_CYCLE,
                        "stitched path repeats a node across segments")
    total = sum(response.path_cost for response in responses)
    if not distances_close(total, composite.path_cost):
        return _failure(
            codes.COST_MISMATCH,
            f"segment costs sum to {total!r}, composite claims "
            f"{composite.path_cost!r}",
        )

    # -- full per-segment verification (signature, roots, optimality) --
    checker = Client(verify_signature, min_descriptor_version=min_version)
    for index, (segment, response) in enumerate(zip(segments, responses)):
        seg_source = response.path_nodes[0]
        seg_target = response.path_nodes[-1]
        verdict = checker.verify_bytes(seg_source, seg_target,
                                       segment.response_bytes)
        if not verdict.ok:
            return _failure(
                verdict.reason,
                f"segment {index} (shard {segment.shard_id}): "
                f"{verdict.detail}",
            )
    return VerificationResult.success()
