"""Cutting one graph into k servable shards.

Sharding follows the distributed-directory model (Goodrich et al.): the
owner partitions the network once, builds and signs one authenticated
structure *per shard*, and hands the pieces to untrusted serving boxes.
Everything here is owner-side; what makes the partition itself
verifiable is the signed manifest in :mod:`repro.shard.manifest`.

A shard's serving graph is **core + halo**:

* the *core* is the set of nodes the shard owns (every node has exactly
  one owner);
* the *halo* is the one-hop fringe — every foreign endpoint of a cut
  edge — included so a shard can answer segment queries that terminate
  on a neighbouring shard's border node;
* edges are the core-core edges plus the cut edges.  Halo-halo edges
  are *excluded*: the halo exists to terminate paths, not to route
  through foreign territory the shard does not serve.

Cut edges are therefore present in **both** adjacent shards' graphs,
which is what makes cross-shard stitching sound: a global shortest path
split at ownership changes yields segments that each lie entirely
inside one shard's graph (interior core hops plus one trailing cut
edge), and a subpath of a shortest path is itself shortest — so each
segment verifies against its shard's signed root with the unchanged
per-method machinery, at exactly the global segment cost.

Two strategies order the nodes before the balanced contiguous cut:

* ``"hilbert"`` — the space-filling curve from :mod:`repro.order`;
  works for any ``1 <= k <= |V|`` and keeps shards spatially compact;
* ``"grid"`` — :class:`~repro.hiti.partition.GridPartition` cells in
  row-major order (the paper's HYP partitioning reused); cells stay
  contiguous in the cut, so shards are unions of grid cells up to one
  straddling cell per boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import GraphError
from repro.graph.graph import SpatialGraph
from repro.order.orderings import hilbert_order

#: Node orderings :func:`plan_shards` can cut along.
PARTITION_STRATEGIES = ("hilbert", "grid")

#: Default number of shards for the CLI.
DEFAULT_SHARDS = 2


@dataclass(frozen=True)
class ShardPlan:
    """Who owns what: the partition plus its cross-shard overlay.

    ``members[s]`` is shard *s*'s sorted core; ``boundary[s]`` the
    sorted subset of that core with at least one foreign neighbour;
    ``cut_edges`` every edge whose endpoints have different owners
    (``u < v``, ascending).  The plan is pure bookkeeping — shard
    graphs are derived from it by :func:`shard_subgraph`.
    """

    strategy: str
    members: tuple[tuple[int, ...], ...]
    boundary: tuple[tuple[int, ...], ...]
    cut_edges: tuple[tuple[int, int, float], ...]
    _owner: dict = field(repr=False, compare=False, default_factory=dict)

    @property
    def num_shards(self) -> int:
        """How many shards the plan cuts the graph into."""
        return len(self.members)

    def shard_of(self, node_id: int) -> int:
        """The shard owning *node_id* (raises for unknown nodes)."""
        try:
            return self._owner[node_id]
        except KeyError:
            raise GraphError(f"node {node_id} is in no shard") from None


def _ordered_nodes(graph: SpatialGraph, num_shards: int,
                   strategy: str) -> "list[int]":
    """All node ids in the order the balanced cut slices."""
    if strategy == "hilbert":
        return hilbert_order(graph)
    if strategy == "grid":
        from repro.hiti.partition import GridPartition

        # The grid wants a perfect square of cells; use the smallest
        # square with at least one cell per shard, then cut the
        # cell-ordered node sequence (cells stay contiguous).
        side = math.isqrt(num_shards)
        if side * side < num_shards:
            side += 1
        partition = GridPartition(graph, max(1, side) ** 2)
        return [node_id
                for cell in partition.occupied_cells
                for node_id in partition.members_of(cell)]
    raise GraphError(
        f"unknown partition strategy {strategy!r}; "
        f"known: {PARTITION_STRATEGIES}"
    )


def plan_shards(graph: SpatialGraph, num_shards: int, *,
                strategy: str = "hilbert") -> ShardPlan:
    """Assign every node an owner shard; compute the cut overlay.

    The node sequence from *strategy* is sliced into ``num_shards``
    balanced contiguous chunks (sizes differ by at most one), so both
    strategies yield spatially compact, near-equal shards — the load
    balance the router's fan-out relies on.
    """
    n = graph.num_nodes
    if num_shards < 1:
        raise GraphError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > n:
        raise GraphError(
            f"cannot cut {n} nodes into {num_shards} shards"
        )
    sequence = _ordered_nodes(graph, num_shards, strategy)
    if len(sequence) != n:
        raise GraphError(
            f"ordering covered {len(sequence)} of {n} nodes"
        )
    bounds = [round(s * n / num_shards) for s in range(num_shards + 1)]
    members = tuple(
        tuple(sorted(sequence[bounds[s]:bounds[s + 1]]))
        for s in range(num_shards)
    )
    owner: dict[int, int] = {}
    for shard_id, ids in enumerate(members):
        for node_id in ids:
            owner[node_id] = shard_id
    cut_edges = []
    crossing: "list[set[int]]" = [set() for _ in range(num_shards)]
    for u, v, w in graph.edges():
        if owner[u] != owner[v]:
            cut_edges.append((u, v, w))
            crossing[owner[u]].add(u)
            crossing[owner[v]].add(v)
    boundary = tuple(tuple(sorted(nodes)) for nodes in crossing)
    return ShardPlan(strategy=strategy, members=members, boundary=boundary,
                     cut_edges=tuple(cut_edges), _owner=owner)


def shard_subgraph(graph: SpatialGraph, plan: ShardPlan,
                   shard_id: int) -> SpatialGraph:
    """Shard *shard_id*'s serving graph: core + halo, no halo-halo edges.

    The result carries the source graph's mutation version, so every
    shard descriptor — and the manifest binding them — is signed at one
    uniform freshness version.
    """
    if not 0 <= shard_id < plan.num_shards:
        raise GraphError(
            f"shard {shard_id} out of range (plan has {plan.num_shards})"
        )
    core = set(plan.members[shard_id])
    nodes: "list[tuple[int, float, float]]" = []
    for node_id in plan.members[shard_id]:
        node = graph.node(node_id)
        nodes.append((node.id, node.x, node.y))
    halo: dict[int, tuple[int, float, float]] = {}
    edges: "list[tuple[int, int, float]]" = []
    for u in plan.members[shard_id]:
        for v, w in sorted(graph.neighbors(u).items()):
            if v in core:
                if u < v:
                    edges.append((u, v, w))
            else:
                if v not in halo:
                    node = graph.node(v)
                    halo[v] = (node.id, node.x, node.y)
                edges.append((u, v, w) if u < v else (v, u, w))
    nodes.extend(halo[node_id] for node_id in sorted(halo))
    return SpatialGraph.from_parts(nodes, edges, version=graph.version)


@dataclass(frozen=True)
class ShardBuild:
    """Everything the owner ships after one sharded publish."""

    plan: ShardPlan
    manifest: "object"  # ShardManifest (typed loosely to avoid a cycle)
    methods: tuple

    @property
    def num_shards(self) -> int:
        """How many shards were built."""
        return len(self.methods)


def build_shards(graph: SpatialGraph, signer, *, num_shards: int,
                 method: str = "DIJ", strategy: str = "hilbert",
                 **params) -> ShardBuild:
    """Partition, build one signed method per shard, sign the manifest.

    This is the owner's whole sharded publish in one call: the returned
    :class:`ShardBuild` holds the per-shard built methods (each over its
    core+halo graph, each under its own signed descriptor) and the
    owner-signed :class:`~repro.shard.manifest.ShardManifest` that binds
    the partition to those descriptors by digest.
    """
    from repro.core.method import get_method
    from repro.shard.manifest import build_manifest

    plan = plan_shards(graph, num_shards, strategy=strategy)
    method_cls = get_method(method)
    methods = tuple(
        method_cls.build(shard_subgraph(graph, plan, shard_id), signer,
                         **params)
        for shard_id in range(plan.num_shards)
    )
    manifest = build_manifest(plan, methods, signer)
    return ShardBuild(plan=plan, manifest=manifest, methods=methods)
