"""Sharded serving: partition a graph, sign the manifest, stitch proofs.

The subsystem splits one authenticated graph into k independently
servable shards (:mod:`repro.shard.partition`), binds the cut to the
per-shard signed descriptors with an owner-signed manifest
(:mod:`repro.shard.manifest`), and defines the composite response
format a router assembles and a client verifies end to end
(:mod:`repro.shard.stitch`).  The router itself lives in
:mod:`repro.service.router`, next to the other serving machinery.
"""

from repro.shard.manifest import (
    MANIFEST_FORMAT_VERSION,
    MANIFEST_MAGIC,
    ShardEntry,
    ShardManifest,
    build_manifest,
    descriptor_digest,
    is_manifest,
    load_manifest,
    manifest_info,
    save_manifest,
    sign_manifest,
    verify_manifest,
)
from repro.shard.partition import (
    DEFAULT_SHARDS,
    PARTITION_STRATEGIES,
    ShardBuild,
    ShardPlan,
    build_shards,
    plan_shards,
    shard_subgraph,
)
from repro.shard.stitch import (
    COMPOSITE_FORMAT_VERSION,
    CompositeResponse,
    CompositeSegment,
    verify_composite,
)

__all__ = [
    "COMPOSITE_FORMAT_VERSION",
    "CompositeResponse",
    "CompositeSegment",
    "DEFAULT_SHARDS",
    "MANIFEST_FORMAT_VERSION",
    "MANIFEST_MAGIC",
    "PARTITION_STRATEGIES",
    "ShardBuild",
    "ShardEntry",
    "ShardManifest",
    "ShardPlan",
    "build_manifest",
    "build_shards",
    "descriptor_digest",
    "is_manifest",
    "load_manifest",
    "manifest_info",
    "plan_shards",
    "save_manifest",
    "shard_subgraph",
    "sign_manifest",
    "verify_composite",
    "verify_manifest",
]
