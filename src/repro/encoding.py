"""Canonical binary encoding.

The same byte encoding is used for two purposes:

* **Hashing** — extended tuples and distance tuples are hashed by the
  Merkle trees, so the encoding must be deterministic (the provider and
  the client must derive identical digests from identical values).
* **Size accounting** — the paper reports communication overhead in
  KBytes, so proofs are measured by serializing them with this encoder.

The format is a simple length-delimited scheme:

* unsigned integers: LEB128 varint;
* signed integers: zigzag + varint;
* floats: IEEE-754 big-endian, 8 bytes (``f64``) or 4 bytes (``f32``);
* bytes / strings: varint length prefix followed by the payload;
* booleans: one byte.

No self-description is included: decoding requires knowing the schema,
which is fine because every message type in this package has a fixed
layout.
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence

from repro.errors import EncodingError

_F64 = struct.Struct(">d")
_F32 = struct.Struct(">f")


def _build_uvarint_table(limit: int) -> "tuple[bytes, ...]":
    out = []
    for value in range(limit):
        if value < 0x80:
            out.append(bytes([value]))
        else:
            out.append(bytes([(value & 0x7F) | 0x80, value >> 7]))
    return tuple(out)


#: Precomputed encodings for small values — leaf positions, payload
#: lengths, node ids and proof-entry coordinates are overwhelmingly
#: below this bound, and proof serialization is a serving hot path.
_UVARINT_TABLE = _build_uvarint_table(1 << 14)


def encode_uvarint(value: int) -> bytes:
    """LEB128 varint encoding of an unsigned integer.

    Standalone form of :meth:`Encoder.write_uint` for batch encoders
    that precompute per-id prefixes instead of running an
    :class:`Encoder` per record.
    """
    if 0 <= value < 16384:
        return _UVARINT_TABLE[value]
    if value < 0:
        raise EncodingError(f"write_uint requires value >= 0, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            break
    return bytes(out)


def pack_codes_rows(rows, bits: int) -> "list[bytes]":
    """Batch bit-packing: one :meth:`Encoder.write_packed_codes`
    bitstream (without the leading count varint) per matrix row.

    ``rows`` is a ``(k, c)`` integer array; the return value is ``k``
    byte strings, each byte-identical to the stream the per-value
    Python packer emits for that row.  The whole batch is four
    vectorized NumPy passes — this is what makes re-encoding hundreds
    of landmark tuples per live update affordable.
    """
    import numpy as np

    if bits <= 0 or bits > 64:
        raise EncodingError(f"bits must be in [1, 64], got {bits}")
    rows = np.asarray(rows)
    if rows.ndim != 2:
        raise EncodingError(f"expected a (rows, codes) matrix, got {rows.shape}")
    if rows.size and (rows.min() < 0 or rows.max() >= (1 << bits)):
        raise EncodingError(f"code out of range for {bits} bits")
    k, c = rows.shape
    if c == 0:
        return [b""] * k
    # Narrowest big-endian container covering the code width: unpackbits
    # then touches 2/4/8x fewer bytes for the common small-bits cases.
    if bits <= 16:
        width, dtype = 16, ">u2"
    elif bits <= 32:
        width, dtype = 32, ">u4"
    else:
        width, dtype = 64, ">u8"
    as_bytes = rows.astype(dtype).reshape(k, c, 1).view(np.uint8)
    all_bits = np.unpackbits(as_bytes, axis=2)
    wanted = all_bits[:, :, width - bits:].reshape(k, c * bits)
    packed = np.packbits(wanted, axis=1)  # zero-pads the final byte, as
    return [row.tobytes() for row in packed]  # the streaming packer does


def zigzag_encode(value: int) -> int:
    """Map a signed integer to an unsigned one (0, -1, 1, -2 -> 0, 1, 2, 3)."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) if (value & 1) == 0 else -((value + 1) >> 1)


class Encoder:
    """Append-only canonical encoder.

    Example
    -------
    >>> enc = Encoder()
    >>> enc.write_uint(300).write_str("hi").getvalue()
    b'\\xac\\x02\\x02hi'
    """

    __slots__ = ("_parts",)

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def write_uint(self, value: int) -> "Encoder":
        """Write an unsigned LEB128 varint."""
        self._parts.append(encode_uvarint(value))
        return self

    def write_int(self, value: int) -> "Encoder":
        """Write a signed integer (zigzag varint)."""
        if value >= 0:
            return self.write_uint(value << 1)
        return self.write_uint(((-value) << 1) - 1)

    def write_f64(self, value: float) -> "Encoder":
        """Write a 64-bit IEEE-754 float."""
        self._parts.append(_F64.pack(value))
        return self

    def write_f32(self, value: float) -> "Encoder":
        """Write a 32-bit IEEE-754 float (lossy)."""
        self._parts.append(_F32.pack(value))
        return self

    def write_bool(self, value: bool) -> "Encoder":
        """Write a boolean as one byte."""
        self._parts.append(b"\x01" if value else b"\x00")
        return self

    def write_bytes(self, value: bytes) -> "Encoder":
        """Write length-prefixed bytes."""
        self.write_uint(len(value))
        self._parts.append(bytes(value))
        return self

    def write_raw(self, value: bytes) -> "Encoder":
        """Write bytes with no length prefix (fixed-size fields)."""
        self._parts.append(bytes(value))
        return self

    def write_str(self, value: str) -> "Encoder":
        """Write a length-prefixed UTF-8 string."""
        return self.write_bytes(value.encode("utf-8"))

    def write_uint_seq(self, values: Iterable[int]) -> "Encoder":
        """Write a count followed by each unsigned integer."""
        values = list(values)
        self.write_uint(len(values))
        for value in values:
            self.write_uint(value)
        return self

    def write_f64_seq(self, values: Iterable[float]) -> "Encoder":
        """Write a count followed by each 64-bit float."""
        values = list(values)
        self.write_uint(len(values))
        for value in values:
            self.write_f64(value)
        return self

    def write_packed_codes(self, codes: Sequence[int], bits: int) -> "Encoder":
        """Write small unsigned integers packed at *bits* bits each.

        Used for quantized landmark distance vectors: ``c`` codes of ``b``
        bits occupy ``ceil(c*b/8)`` bytes, exactly as the paper accounts
        for them.
        """
        if bits <= 0 or bits > 64:
            raise EncodingError(f"bits must be in [1, 64], got {bits}")
        self.write_uint(len(codes))
        acc = 0
        acc_bits = 0
        out = bytearray()
        limit = 1 << bits
        for code in codes:
            if code < 0 or code >= limit:
                raise EncodingError(f"code {code} out of range for {bits} bits")
            acc = (acc << bits) | code
            acc_bits += bits
            while acc_bits >= 8:
                acc_bits -= 8
                out.append((acc >> acc_bits) & 0xFF)
        if acc_bits:
            out.append((acc << (8 - acc_bits)) & 0xFF)
        self._parts.append(bytes(out))
        return self

    def getvalue(self) -> bytes:
        """Return everything written so far as one bytes object."""
        return b"".join(self._parts)

    def __len__(self) -> int:
        return sum(len(part) for part in self._parts)


class Decoder:
    """Sequential decoder mirroring :class:`Encoder`."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def read_uint(self) -> int:
        """Read an unsigned LEB128 varint."""
        result = 0
        shift = 0
        data = self._data
        pos = self._pos
        while True:
            if pos >= len(data):
                raise EncodingError("truncated varint")
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 70:
                raise EncodingError("varint too long")
        self._pos = pos
        return result

    def read_int(self) -> int:
        """Read a signed (zigzag) integer."""
        raw = self.read_uint()
        return (raw >> 1) if (raw & 1) == 0 else -((raw + 1) >> 1)

    def _take(self, count: int) -> bytes:
        end = self._pos + count
        if end > len(self._data):
            raise EncodingError(
                f"truncated payload: wanted {count} bytes, "
                f"{len(self._data) - self._pos} remaining"
            )
        chunk = self._data[self._pos:end]
        self._pos = end
        return chunk

    def read_f64(self) -> float:
        """Read a 64-bit float."""
        return _F64.unpack(self._take(8))[0]

    def read_f32(self) -> float:
        """Read a 32-bit float."""
        return _F32.unpack(self._take(4))[0]

    def read_bool(self) -> bool:
        """Read a boolean byte."""
        byte = self._take(1)[0]
        if byte not in (0, 1):
            raise EncodingError(f"invalid boolean byte {byte!r}")
        return bool(byte)

    def read_bytes(self) -> bytes:
        """Read length-prefixed bytes."""
        return self._take(self.read_uint())

    def read_raw(self, count: int) -> bytes:
        """Read exactly *count* bytes (no length prefix)."""
        return self._take(count)

    def read_str(self) -> str:
        """Read a length-prefixed UTF-8 string."""
        try:
            return self.read_bytes().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise EncodingError("invalid UTF-8 string") from exc

    def read_count(self, min_item_bytes: int = 1) -> int:
        """Read a count varint, bounded by the bytes actually present.

        Every counted item occupies at least *min_item_bytes* in the
        stream, so a count exceeding ``remaining / min_item_bytes`` can
        only come from a corrupted or adversarial payload: reject it up
        front (as :class:`EncodingError`) instead of looping into a
        truncation error item by item — or, worse, pre-sizing buffers
        from attacker-controlled lengths.
        """
        count = self.read_uint()
        if count * min_item_bytes > self.remaining:
            raise EncodingError(
                f"count {count} (>= {min_item_bytes} bytes each) exceeds "
                f"the {self.remaining} bytes remaining"
            )
        return count

    def read_uint_seq(self) -> list[int]:
        """Read a count-prefixed sequence of unsigned integers."""
        return [self.read_uint() for _ in range(self.read_count(1))]

    def read_f64_seq(self) -> list[float]:
        """Read a count-prefixed sequence of 64-bit floats."""
        return [self.read_f64() for _ in range(self.read_count(8))]

    def read_packed_codes(self, bits: int) -> list[int]:
        """Read codes written by :meth:`Encoder.write_packed_codes`."""
        if bits <= 0 or bits > 64:
            raise EncodingError(f"bits must be in [1, 64], got {bits}")
        count = self.read_uint()
        total_bits = count * bits
        payload = self._take((total_bits + 7) // 8)
        codes: list[int] = []
        acc = int.from_bytes(payload, "big")
        pad = len(payload) * 8 - total_bits
        acc >>= pad
        mask = (1 << bits) - 1
        for i in range(count):
            shift = (count - 1 - i) * bits
            codes.append((acc >> shift) & mask)
        return codes

    @property
    def remaining(self) -> int:
        """Number of unread bytes."""
        return len(self._data) - self._pos

    def expect_end(self) -> None:
        """Raise :class:`EncodingError` unless all bytes were consumed."""
        if self.remaining:
            raise EncodingError(f"{self.remaining} trailing bytes")
