"""Query/update workloads and benchmark datasets (paper §VI-A)."""

from repro.workload.datasets import DATASET_SPECS, dataset_names, load_dataset
from repro.workload.queries import QueryWorkload, generate_workload
from repro.workload.traffic import (
    SCENARIOS,
    PhaseSpec,
    Scenario,
    TrafficEvent,
    TrafficMix,
    TrafficTrace,
    generate_traffic,
    get_scenario,
)
from repro.workload.updates import (
    GraphUpdate,
    UpdateWorkload,
    generate_update_workload,
    interleave,
)

__all__ = [
    "QueryWorkload",
    "generate_workload",
    "GraphUpdate",
    "UpdateWorkload",
    "generate_update_workload",
    "interleave",
    "load_dataset",
    "dataset_names",
    "DATASET_SPECS",
    "SCENARIOS",
    "PhaseSpec",
    "Scenario",
    "TrafficEvent",
    "TrafficMix",
    "TrafficTrace",
    "generate_traffic",
    "get_scenario",
]
