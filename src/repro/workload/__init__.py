"""Query/update workloads and benchmark datasets (paper §VI-A)."""

from repro.workload.datasets import DATASET_SPECS, dataset_names, load_dataset
from repro.workload.queries import QueryWorkload, generate_workload
from repro.workload.updates import (
    GraphUpdate,
    UpdateWorkload,
    generate_update_workload,
    interleave,
)

__all__ = [
    "QueryWorkload",
    "generate_workload",
    "GraphUpdate",
    "UpdateWorkload",
    "generate_update_workload",
    "interleave",
    "load_dataset",
    "dataset_names",
    "DATASET_SPECS",
]
