"""Query workloads and benchmark datasets (paper §VI-A)."""

from repro.workload.datasets import DATASET_SPECS, dataset_names, load_dataset
from repro.workload.queries import QueryWorkload, generate_workload

__all__ = [
    "QueryWorkload",
    "generate_workload",
    "load_dataset",
    "dataset_names",
    "DATASET_SPECS",
]
