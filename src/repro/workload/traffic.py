"""Production-realism traffic generation: the shape of real load.

The query workloads (:mod:`repro.workload.queries`) draw uniform pairs
— fine for proof-size figures, useless for serving questions: a uniform
replay makes every cache hit rate an artifact of the replay count, and
a fixed-rate loop says nothing about tail latency under bursts.  This
module generates *traces* with the statistical shape of production
traffic, fully seeded so one seed reproduces one byte-identical
request sequence:

* **Zipf-skewed origins/destinations** — node popularity follows a
  power law over a seeded ranking, and queries draw from a bounded
  pool of popular pairs, so the ProofCache hit rate measures locality
  the way a real service would see it;
* **bursty open-loop arrivals** — a Poisson base rate modulated by
  on/off burst periods (a Markov-modulated Poisson process), giving
  each event an arrival timestamp the load driver paces itself by
  rather than waiting for responses (open loop is what exposes queue
  buildup);
* **a configurable frame mix** — QUERY, BATCH (a multi-query frame),
  UPDATE (an owner re-weight push) and GARBAGE (adversarial bytes:
  truncated / bit-flipped / wrong-version / random-noise / replayed
  frames), so one trace exercises the happy path, the write path and
  the error taxonomy together;
* **phased scenarios** — warmup → steady → burst → update-storm and
  friends, each phase with its own rate, mix and loop mode, registered
  by name (``SCENARIOS``) for the CLI and the SLO harness.

Everything here is generation only: no sockets, no servers.  The
:mod:`repro.bench.slo` harness executes traces; tests introspect them.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field, replace

from repro.api.envelope import QueryRequest, decode_frame
from repro.errors import WorkloadError
from repro.graph.graph import SpatialGraph
from repro.workload.updates import (
    UPDATE_WEIGHT,
    GraphUpdate,
    generate_update_workload,
)

#: Event kinds a trace can contain.
EVENT_QUERY = "query"
EVENT_BATCH = "batch"
EVENT_UPDATE = "update"
EVENT_GARBAGE = "garbage"

EVENT_KINDS = (EVENT_QUERY, EVENT_BATCH, EVENT_UPDATE, EVENT_GARBAGE)

#: Garbage frame flavours and what a correct server may answer:
#: ``error`` — must come back as a typed taxonomy error frame;
#: ``any``   — a typed error *or* a well-formed reply (a bit flip can
#:             land in the query payload and still decode);
#: ``ok``    — must be answered like any well-formed request (replays
#:             of valid frames are legitimate traffic to an untrusted
#:             provider).
GARBAGE_NOISE = "noise"
GARBAGE_TRUNCATED = "truncated"
GARBAGE_BITFLIP = "bitflip"
GARBAGE_BAD_VERSION = "bad-version"
GARBAGE_REPLAY = "replay"

GARBAGE_KINDS = (GARBAGE_NOISE, GARBAGE_TRUNCATED, GARBAGE_BITFLIP,
                 GARBAGE_BAD_VERSION, GARBAGE_REPLAY)

GARBAGE_EXPECTATION = {
    GARBAGE_NOISE: "error",
    GARBAGE_TRUNCATED: "error",
    GARBAGE_BITFLIP: "any",
    GARBAGE_BAD_VERSION: "error",
    GARBAGE_REPLAY: "ok",
}


@dataclass(frozen=True)
class TrafficMix:
    """Relative frame-kind weights for one phase (need not sum to 1)."""

    query: float = 1.0
    batch: float = 0.0
    update: float = 0.0
    garbage: float = 0.0
    #: Inclusive bounds on the queries packed into one BATCH frame.
    batch_size: tuple[int, int] = (2, 5)

    def __post_init__(self) -> None:
        weights = (self.query, self.batch, self.update, self.garbage)
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise WorkloadError(f"invalid traffic mix weights {weights}")
        lo, hi = self.batch_size
        if not 1 <= lo <= hi:
            raise WorkloadError(f"invalid batch_size bounds {self.batch_size}")

    @property
    def weights(self) -> tuple[float, float, float, float]:
        """Weights aligned with :data:`EVENT_KINDS`."""
        return (self.query, self.batch, self.update, self.garbage)


@dataclass(frozen=True)
class PhaseSpec:
    """One soak phase: how many events, how fast, and their mix.

    ``rate`` is the open-loop offered rate in events/second (arrival
    timestamps are spaced accordingly); ``closed_loop`` phases ignore
    the timestamps and fire back-to-back — that is the saturation
    probe.  ``burst_factor > 1`` multiplies the rate during "on"
    periods whose lengths are exponential with means ``burst_on`` /
    ``burst_off`` seconds (the off-mean spaces the bursts).
    """

    name: str
    events: int
    rate: float = 50.0
    mix: TrafficMix = field(default_factory=TrafficMix)
    closed_loop: bool = False
    burst_factor: float = 1.0
    burst_on: float = 0.0
    burst_off: float = 0.0

    def __post_init__(self) -> None:
        if self.events < 1:
            raise WorkloadError(f"phase {self.name!r}: events must be >= 1")
        if self.rate <= 0:
            raise WorkloadError(f"phase {self.name!r}: rate must be positive")
        if self.burst_factor < 1.0:
            raise WorkloadError(
                f"phase {self.name!r}: burst_factor must be >= 1"
            )


@dataclass(frozen=True)
class Scenario:
    """A named sequence of phases with one Zipf skew parameter.

    ``zipf_s`` is the popularity exponent (1.0 is the classic Zipf
    law; larger skews harder) and ``pool_size`` bounds the popular
    query-pair pool the Zipf ranks range over — together they are what
    makes cache hit rates *mean* something.
    """

    name: str
    phases: tuple[PhaseSpec, ...]
    zipf_s: float = 1.1
    pool_size: int = 64

    def __post_init__(self) -> None:
        if not self.phases:
            raise WorkloadError(f"scenario {self.name!r} has no phases")
        names = [p.name for p in self.phases]
        if len(set(names)) != len(names):
            raise WorkloadError(
                f"scenario {self.name!r}: phase names must be unique, "
                f"got {names}"
            )
        if self.zipf_s <= 0 or self.pool_size < 1:
            raise WorkloadError(
                f"scenario {self.name!r}: bad zipf_s/pool_size "
                f"({self.zipf_s}, {self.pool_size})"
            )

    @property
    def total_events(self) -> int:
        """Events across all phases."""
        return sum(p.events for p in self.phases)

    def scaled(self, events_scale: float) -> "Scenario":
        """A copy with every phase's event count scaled (min 1 each).

        The knob CI and tests use to run the same scenario *shape* at a
        smoke-test size.
        """
        if events_scale <= 0:
            raise WorkloadError(f"events_scale must be positive, got {events_scale}")
        return replace(self, phases=tuple(
            replace(p, events=max(1, round(p.events * events_scale)))
            for p in self.phases
        ))


#: The standard soak: warm the cache gently, hold a steady mixed rate,
#: slam a closed-loop burst (the saturation probe), then an
#: update-storm where owner pushes dominate.  Garbage rides along in
#: steady and storm phases so the error taxonomy is exercised
#: mid-traffic, not in a lab.
STEADY_BURST = Scenario(
    name="steady-burst",
    phases=(
        PhaseSpec("warmup", events=40, rate=80.0),
        PhaseSpec("steady", events=120, rate=120.0,
                  mix=TrafficMix(query=0.82, batch=0.10, garbage=0.08),
                  burst_factor=4.0, burst_on=0.1, burst_off=0.4),
        PhaseSpec("burst", events=120, rate=400.0, closed_loop=True,
                  mix=TrafficMix(query=0.9, batch=0.1)),
        PhaseSpec("update-storm", events=60, rate=100.0,
                  mix=TrafficMix(query=0.72, batch=0.08, update=0.12,
                                 garbage=0.08)),
    ),
)

#: Read-only steady state: the baseline SLO run.
STEADY = Scenario(
    name="steady",
    phases=(
        PhaseSpec("warmup", events=30, rate=80.0),
        PhaseSpec("steady", events=120, rate=120.0,
                  mix=TrafficMix(query=0.9, batch=0.1)),
    ),
)

#: Hostile mix: a third of the traffic is garbage, replayed or
#: corrupted, with owner pushes moving the version underneath it.
ADVERSARIAL_SOAK = Scenario(
    name="adversarial-soak",
    phases=(
        PhaseSpec("warmup", events=30, rate=100.0),
        PhaseSpec("hostile", events=150, rate=150.0,
                  mix=TrafficMix(query=0.52, batch=0.08, update=0.06,
                                 garbage=0.34),
                  burst_factor=3.0, burst_on=0.1, burst_off=0.3),
    ),
)

#: Registry the CLI's ``loadtest --scenario`` resolves names against.
SCENARIOS = {s.name: s for s in (STEADY_BURST, STEADY, ADVERSARIAL_SOAK)}


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown scenario {name!r}; registered: {sorted(SCENARIOS)}"
        ) from None


@dataclass(frozen=True)
class TrafficEvent:
    """One generated request with its open-loop arrival time.

    ``at`` is seconds since the phase start.  Exactly one payload field
    is meaningful per kind: ``queries`` for QUERY (one pair) and BATCH
    (several), ``update`` for UPDATE, ``frame``/``garbage_kind``/
    ``expect`` for GARBAGE.
    """

    at: float
    kind: str
    queries: tuple[tuple[int, int], ...] = ()
    update: "GraphUpdate | None" = None
    frame: "bytes | None" = None
    garbage_kind: str = ""
    expect: str = ""


@dataclass(frozen=True)
class TrafficTrace:
    """A fully generated scenario: per-phase event lists, seeded.

    The determinism contract — the acceptance gate of the whole
    simulator — is that ``generate_traffic(graph, scenario, seed=s)``
    is byte-identical across calls and processes for equal inputs.
    """

    scenario: str
    seed: int
    phases: tuple[tuple[PhaseSpec, tuple[TrafficEvent, ...]], ...]

    @property
    def total_events(self) -> int:
        """Events across all phases."""
        return sum(len(events) for _, events in self.phases)

    def events_of(self, phase_name: str) -> tuple[TrafficEvent, ...]:
        """The events of one phase by name."""
        for phase, events in self.phases:
            if phase.name == phase_name:
                return events
        raise WorkloadError(f"no phase {phase_name!r} in this trace")

    def digest(self) -> str:
        """A short hex fingerprint of the full request sequence.

        Two traces with equal digests carry identical events in
        identical order — the witness the CLI prints and the
        determinism tests compare across processes.
        """
        import hashlib

        h = hashlib.sha256()
        for phase, events in self.phases:
            h.update(phase.name.encode())
            for e in events:
                h.update(repr((round(e.at, 9), e.kind, e.queries, e.update,
                               e.frame, e.garbage_kind)).encode())
        return h.hexdigest()[:16]


class ZipfSampler:
    """Zipf-distributed draws over a seeded ranking of *items*.

    Rank ``r`` (0-based) is drawn with probability proportional to
    ``1 / (r + 1) ** s``; which item holds which rank is a seeded
    shuffle, so two samplers with different seeds disagree about what
    is popular — exactly like two regions of a real user base.
    """

    def __init__(self, items, *, s: float = 1.1, seed: object = 0) -> None:
        ranked = list(items)
        if not ranked:
            raise WorkloadError("cannot sample from an empty item list")
        random.Random(str(seed)).shuffle(ranked)
        self._ranked = ranked
        total = 0.0
        cumulative = []
        for rank in range(len(ranked)):
            total += 1.0 / float(rank + 1) ** s
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def draw(self, rng: random.Random):
        """One Zipf-distributed item."""
        position = bisect.bisect_left(self._cumulative,
                                      rng.random() * self._total)
        return self._ranked[min(position, len(self._ranked) - 1)]


def _arrival_times(rng: random.Random, phase: PhaseSpec) -> "list[float]":
    """Open-loop arrival timestamps for one phase (MMPP)."""
    times: list[float] = []
    now = 0.0
    bursting = False
    toggle_at = (now + rng.expovariate(1.0 / phase.burst_off)
                 if phase.burst_factor > 1.0 and phase.burst_off > 0
                 else float("inf"))
    for _ in range(phase.events):
        rate = phase.rate * (phase.burst_factor if bursting else 1.0)
        now += rng.expovariate(rate)
        if now >= toggle_at:
            bursting = not bursting
            mean = phase.burst_on if bursting else phase.burst_off
            toggle_at = now + rng.expovariate(1.0 / mean) if mean > 0 \
                else float("inf")
        times.append(now)
    return times


class TrafficGenerator:
    """Seeded per-graph generator behind :func:`generate_traffic`."""

    def __init__(self, graph: SpatialGraph, *, seed: int = 2010,
                 zipf_s: float = 1.1, pool_size: int = 64) -> None:
        ids = sorted(graph.node_ids())
        if len(ids) < 2 or graph.num_edges == 0:
            raise WorkloadError("traffic needs a graph with >= 2 nodes and edges")
        self.graph = graph
        self.seed = seed
        origins = ZipfSampler(ids, s=zipf_s, seed=f"{seed}:origins")
        dests = ZipfSampler(ids, s=zipf_s, seed=f"{seed}:dests")
        # The popular-pair pool: Zipf-ranked (origin, destination) draws
        # deduplicated into at most ``pool_size`` distinct pairs.  Query
        # events then Zipf-select *within* the pool, so a handful of hot
        # pairs dominates — the locality the proof cache exists for.
        pool_rng = random.Random(f"{seed}:pool")
        pool: list[tuple[int, int]] = []
        seen = set()
        attempts = 0
        while len(pool) < pool_size and attempts < 50 * pool_size:
            attempts += 1
            vs, vt = origins.draw(pool_rng), dests.draw(pool_rng)
            if vs != vt and (vs, vt) not in seen:
                seen.add((vs, vt))
                pool.append((vs, vt))
        if not pool:
            raise WorkloadError("could not assemble a query-pair pool")
        self._pool = pool
        self._pool_sampler = ZipfSampler(range(len(pool)), s=zipf_s,
                                         seed=f"{seed}:pool-ranks")

    # ------------------------------------------------------------------
    def pair(self, rng: random.Random) -> tuple[int, int]:
        """One Zipf-popular query pair."""
        return self._pool[self._pool_sampler.draw(rng)]

    def _garbage(self, rng: random.Random,
                 recent_frames: "list[bytes]") -> TrafficEvent:
        kind = GARBAGE_KINDS[rng.randrange(len(GARBAGE_KINDS))]
        vs, vt = self.pair(rng)
        base = QueryRequest(vs, vt).to_frame()
        queries: tuple[tuple[int, int], ...] = ()
        if kind == GARBAGE_NOISE:
            frame = rng.randbytes(rng.randint(4, 64))
        elif kind == GARBAGE_TRUNCATED:
            frame = base[:rng.randrange(1, len(base))]
        elif kind == GARBAGE_BITFLIP:
            flipped = bytearray(base)
            position = rng.randrange(len(flipped))
            flipped[position] ^= 1 << rng.randrange(8)
            frame = bytes(flipped)
        elif kind == GARBAGE_BAD_VERSION:
            stale = bytearray(base)
            stale[4] = 0x63  # varint 99: a protocol version nobody speaks
            frame = bytes(stale)
        else:  # GARBAGE_REPLAY: an earlier valid frame, byte for byte
            frame = recent_frames[rng.randrange(len(recent_frames))] \
                if recent_frames else base
            replayed = QueryRequest.decode(decode_frame(frame).payload)
            queries = ((replayed.source, replayed.target),)
        return TrafficEvent(0.0, EVENT_GARBAGE, queries=queries, frame=frame,
                            garbage_kind=kind,
                            expect=GARBAGE_EXPECTATION[kind])

    def phase_events(self, phase: PhaseSpec, *, phase_index: int,
                     updates: "list[GraphUpdate]") -> tuple[TrafficEvent, ...]:
        """Generate one phase's events; consumes from *updates*."""
        rng = random.Random(f"{self.seed}:{phase_index}:{phase.name}")
        times = _arrival_times(rng, phase)
        events: list[TrafficEvent] = []
        recent_frames: list[bytes] = []
        for at in times:
            kind = rng.choices(EVENT_KINDS, weights=phase.mix.weights)[0]
            if kind == EVENT_UPDATE and not updates:
                kind = EVENT_QUERY  # stream exhausted: degrade to a read
            if kind == EVENT_QUERY:
                pair = self.pair(rng)
                events.append(TrafficEvent(at, EVENT_QUERY, queries=(pair,)))
                recent_frames.append(QueryRequest(*pair).to_frame())
            elif kind == EVENT_BATCH:
                count = rng.randint(*phase.mix.batch_size)
                pairs = tuple(self.pair(rng) for _ in range(count))
                events.append(TrafficEvent(at, EVENT_BATCH, queries=pairs))
            elif kind == EVENT_UPDATE:
                events.append(TrafficEvent(at, EVENT_UPDATE,
                                           update=updates.pop(0)))
            else:
                events.append(replace(self._garbage(rng, recent_frames), at=at))
            if len(recent_frames) > 32:
                recent_frames.pop(0)
        if (phase.mix.update > 0 and updates
                and not any(e.kind == EVENT_UPDATE for e in events)):
            # A phase that *asks* for updates must carry at least one —
            # the mid-soak version fast-forward is an acceptance gate,
            # not something left to weighted-draw luck.  Deterministic:
            # the middle event becomes an update at its own timestamp.
            middle = len(events) // 2
            events[middle] = TrafficEvent(events[middle].at, EVENT_UPDATE,
                                          update=updates.pop(0))
        return tuple(events)


def generate_traffic(graph: SpatialGraph, scenario: Scenario, *,
                     seed: int = 2010) -> TrafficTrace:
    """Generate the full deterministic trace for *scenario*.

    Update events draw from one weight-only owner stream generated up
    front against a scratch copy of the graph (re-weights stay valid in
    any interleaving, unlike removals), shared across phases in order.
    Same ``(graph, scenario, seed)`` ⇒ identical trace, always.
    """
    generator = TrafficGenerator(graph, seed=seed, zipf_s=scenario.zipf_s,
                                 pool_size=scenario.pool_size)
    # Upper-bound the update stream by the events that could become
    # updates; phases consume sequentially.
    update_budget = sum(
        phase.events for phase in scenario.phases if phase.mix.update > 0
    )
    updates: list[GraphUpdate] = []
    if update_budget:
        updates = list(generate_update_workload(
            graph, update_budget, seed=seed, kinds=(UPDATE_WEIGHT,),
        ))
    phases = []
    for index, phase in enumerate(scenario.phases):
        phases.append((phase, generator.phase_events(
            phase, phase_index=index, updates=updates)))
    return TrafficTrace(scenario=scenario.name, seed=seed,
                        phases=tuple(phases))
