"""Range-targeted query workload generation.

The paper's workload: 100 ``(vs, vt)`` pairs whose shortest path
distance is as close as possible to the *query range* (default 2,000
on the normalized ``[0, 10000]^2`` canvas).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.graph.graph import SpatialGraph
from repro.shortestpath.dijkstra import dijkstra


@dataclass(frozen=True)
class QueryWorkload:
    """A batch of shortest path queries targeting one range."""

    query_range: float
    queries: tuple[tuple[int, int], ...]

    def __iter__(self):
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)


def generate_workload(
    graph: SpatialGraph,
    query_range: float,
    count: int = 100,
    *,
    seed: int = 0,
    tolerance: float = 0.25,
    max_attempts_factor: int = 20,
) -> QueryWorkload:
    """Generate *count* queries with shortest distance ~ *query_range*.

    For each query a random source is drawn; a Dijkstra expansion out
    to ``query_range`` picks the settled node whose distance is closest
    to the range.  Sources whose best candidate misses the range by
    more than ``tolerance * query_range`` are rejected and resampled
    (peripheral sources cannot reach far enough).

    Raises :class:`WorkloadError` when the graph cannot satisfy the
    request (e.g. range far beyond the network diameter).
    """
    if query_range <= 0:
        raise WorkloadError(f"query range must be positive, got {query_range}")
    if count < 1:
        raise WorkloadError(f"count must be >= 1, got {count}")
    rng = random.Random(seed)
    ids = graph.node_ids()
    queries: list[tuple[int, int]] = []
    attempts = 0
    max_attempts = max_attempts_factor * count
    while len(queries) < count:
        attempts += 1
        if attempts > max_attempts:
            raise WorkloadError(
                f"could not generate {count} queries at range {query_range} "
                f"after {attempts} attempts; got {len(queries)} — is the range "
                f"beyond the network diameter?"
            )
        source = ids[rng.randrange(len(ids))]
        ball = dijkstra(graph, source, radius=query_range * (1 + tolerance))
        best_target = None
        best_error = float("inf")
        for node, dist in ball.dist.items():
            if node == source:
                continue
            error = abs(dist - query_range)
            if error < best_error:
                best_error = error
                best_target = node
        if best_target is None or best_error > tolerance * query_range:
            continue
        queries.append((source, best_target))
    return QueryWorkload(query_range=query_range, queries=tuple(queries))
