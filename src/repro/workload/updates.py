"""Update-heavy workload generation for the live-update pipeline.

The query workloads (:mod:`repro.workload.queries`) model read traffic;
this module models the *owner's* write traffic: streams of edge
re-weights (congestion), insertions (new road segments) and removals
(closures) that the incremental re-authentication path must absorb.

Generation is seeded and self-consistent: updates are drawn against a
scratch copy of the graph that replays them as they are emitted, so a
generated stream never re-removes a missing edge, never duplicates an
insertion, and never disconnects the network (removals are only drawn
from cycle edges — FULL, LDM and HYP all require a connected graph).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.graph.graph import ADD_EDGE, REMOVE_EDGE, UPDATE_WEIGHT, SpatialGraph

#: Update kinds — re-exported from the graph changelog vocabulary so
#: generated streams, the server's dispatch and the incremental filter
#: all speak the same strings.
__all__ = [
    "UPDATE_WEIGHT", "ADD_EDGE", "REMOVE_EDGE",
    "GraphUpdate", "UpdateWorkload", "generate_update_workload", "interleave",
]


@dataclass(frozen=True)
class GraphUpdate:
    """One owner mutation, ready to apply to a :class:`SpatialGraph`."""

    kind: str
    u: int
    v: int
    weight: float = 0.0

    def apply(self, graph: SpatialGraph) -> None:
        """Apply this update (the graph changelog records it)."""
        if self.kind == UPDATE_WEIGHT:
            graph.update_edge_weight(self.u, self.v, self.weight)
        elif self.kind == ADD_EDGE:
            graph.add_edge(self.u, self.v, self.weight)
        elif self.kind == REMOVE_EDGE:
            graph.remove_edge(self.u, self.v)
        else:
            raise WorkloadError(f"unknown update kind {self.kind!r}")


@dataclass(frozen=True)
class UpdateWorkload:
    """A batch of owner mutations, in application order."""

    updates: tuple[GraphUpdate, ...]

    def __iter__(self):
        return iter(self.updates)

    def __len__(self) -> int:
        return len(self.updates)

    def apply_all(self, graph: SpatialGraph) -> None:
        """Apply every update in order."""
        for update in self.updates:
            update.apply(graph)


def _still_connected(graph: SpatialGraph, u: int, v: int) -> bool:
    """Whether *u* still reaches *v* if edge (u, v) were removed (BFS)."""
    seen = {u}
    queue = deque([u])
    while queue:
        node = queue.popleft()
        for nbr in graph.neighbors(node):
            if node == u and nbr == v:
                continue  # pretend the edge is gone
            if nbr == v:
                return True
            if nbr not in seen:
                seen.add(nbr)
                queue.append(nbr)
    return False


def generate_update_workload(
    graph: SpatialGraph,
    count: int,
    *,
    seed: int = 0,
    kinds: "tuple[str, ...]" = (UPDATE_WEIGHT, ADD_EDGE, REMOVE_EDGE),
    weights: "tuple[float, ...] | None" = None,
    jitter: tuple[float, float] = (0.5, 2.0),
    max_attempts_factor: int = 50,
) -> UpdateWorkload:
    """Generate *count* seeded, self-consistent owner mutations.

    ``kinds``/``weights`` set the mix (defaults: uniform over the three
    kinds).  Re-weights scale an existing edge by a factor drawn from
    ``jitter``; insertions connect a node to a nearby non-neighbor with
    a weight matching the graph's cost-per-coordinate-distance ratio;
    removals only pick edges whose loss keeps the network connected.
    Raises :class:`WorkloadError` when the graph cannot satisfy the mix
    (e.g. removals requested on a tree).
    """
    if count < 1:
        raise WorkloadError(f"count must be >= 1, got {count}")
    if not kinds or any(
        k not in (UPDATE_WEIGHT, ADD_EDGE, REMOVE_EDGE) for k in kinds
    ):
        raise WorkloadError(f"invalid update kinds {kinds!r}")
    rng = random.Random(seed)
    working = graph.copy()
    ids = working.node_ids()
    if len(ids) < 2 or working.num_edges == 0:
        raise WorkloadError("graph has no edges to mutate")

    # Cost model for insertions: median weight per unit of coordinate
    # distance over a sample of existing edges (fallback: weight 1.0 for
    # purely topological graphs whose coordinates are all zero), plus a
    # locality bound — a new road segment connects *nearby* nodes, so
    # candidate pairs beyond a few median edge spans are rejected
    # rather than creating cross-map shortcuts.
    cost_sample = []
    span_sample = []
    edges = list(working.edges())
    for u, v, w in rng.sample(edges, min(64, len(edges))):
        span = working.euclidean(u, v)
        if span > 0:
            cost_sample.append(w / span)
            span_sample.append(span)
    cost_per_unit = sorted(cost_sample)[len(cost_sample) // 2] \
        if cost_sample else 0.0
    max_span = 4.0 * sorted(span_sample)[len(span_sample) // 2] \
        if span_sample else float("inf")

    updates: list[GraphUpdate] = []
    attempts = 0
    max_attempts = max_attempts_factor * count
    while len(updates) < count:
        attempts += 1
        if attempts > max_attempts:
            raise WorkloadError(
                f"could not generate {count} updates after {attempts} "
                f"attempts; got {len(updates)} — is the mix {kinds} "
                f"feasible on this graph?"
            )
        kind = rng.choices(kinds, weights=weights)[0]
        if kind == UPDATE_WEIGHT:
            u = ids[rng.randrange(len(ids))]
            neighbors = sorted(working.neighbors(u))
            if not neighbors:
                continue
            v = neighbors[rng.randrange(len(neighbors))]
            update = GraphUpdate(
                UPDATE_WEIGHT, u, v,
                working.weight(u, v) * rng.uniform(*jitter),
            )
        elif kind == ADD_EDGE:
            # A new road segment connects *nearby* nodes: draw one
            # endpoint, then pick among its nearest non-neighbors
            # within the locality bound (no cross-map shortcuts).
            u = ids[rng.randrange(len(ids))]
            nearest = sorted(
                (working.euclidean(u, x), x) for x in ids
                if x != u and not working.has_edge(u, x)
            )[:8]
            nearby = [x for span, x in nearest if span <= max_span]
            if not nearby:
                continue
            v = nearby[rng.randrange(len(nearby))]
            span = working.euclidean(u, v)
            weight = span * cost_per_unit if span > 0 and cost_per_unit > 0 \
                else 1.0
            update = GraphUpdate(ADD_EDGE, u, v, weight * rng.uniform(*jitter))
        else:  # REMOVE_EDGE
            u, v, _ = edges[rng.randrange(len(edges))]
            if not working.has_edge(u, v) or not _still_connected(working, u, v):
                continue
            update = GraphUpdate(REMOVE_EDGE, u, v)
        update.apply(working)
        updates.append(update)
    return UpdateWorkload(updates=tuple(updates))


def interleave(
    queries: "list[tuple[int, int]]",
    updates: UpdateWorkload,
    *,
    seed: int = 0,
) -> "list[tuple[str, object]]":
    """A mixed read/write trace: ``("query", (vs, vt))`` / ``("update", GraphUpdate)``.

    Updates are scattered uniformly through the query stream (seeded),
    preserving each stream's internal order — the shape the serving
    benchmarks and the cache-invalidation tests replay.
    """
    rng = random.Random(seed)
    update_list = list(updates)
    cut_points = sorted(
        rng.randrange(len(queries) + 1) for _ in update_list
    )
    trace: "list[tuple[str, object]]" = []
    next_update = 0
    for position, query in enumerate(queries):
        while next_update < len(update_list) \
                and cut_points[next_update] <= position:
            trace.append(("update", update_list[next_update]))
            next_update += 1
        trace.append(("query", query))
    for update in update_list[next_update:]:
        trace.append(("update", update))
    return trace
