"""Named benchmark datasets: synthetic stand-ins for the DCW networks.

The paper's datasets (Digital Chart of the World road networks, no
longer distributed):

========  =========  =========
name      nodes      edges
========  =========  =========
DE         28,867     30,429
ARG        85,287     88,357
IND       149,566    155,483
NA        175,813    179,179
========  =========  =========

:func:`load_dataset` generates a synthetic road network with the same
structural fingerprint (see :mod:`repro.graph.synthetic`) scaled by
``scale`` (default 1/16).  The default scale keeps every experiment —
including FULL's quadratic materialization on the smaller networks —
inside a Python-friendly budget while preserving all relative trends.
Results are cached per (name, scale) within the process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.graph.components import largest_component
from repro.graph.graph import SpatialGraph
from repro.graph.synthetic import road_network
from repro.shortestpath.dijkstra import dijkstra


@dataclass(frozen=True)
class DatasetSpec:
    """Paper dataset fingerprint."""

    name: str
    paper_nodes: int
    paper_edges: int
    seed: int


DATASET_SPECS: dict[str, DatasetSpec] = {
    "DE": DatasetSpec("DE", 28_867, 30_429, seed=1701),
    "ARG": DatasetSpec("ARG", 85_287, 88_357, seed=1702),
    "IND": DatasetSpec("IND", 149_566, 155_483, seed=1703),
    "NA": DatasetSpec("NA", 175_813, 179_179, seed=1704),
}

DEFAULT_SCALE = 1.0 / 16.0

#: Weighted network diameter every dataset is normalized to.  In the DCW
#: data the query ranges (250..8000, default 2000) live on the *weight*
#: scale: range 2000 already covers a large fraction of a network (the
#: paper's DIJ proof discloses 88% of DE's nodes at the default range),
#: while range-8000 queries still exist.  A 9000-unit diameter supports
#: the full range sweep; at the default range the Dijkstra ball covers a
#: large share of the graph, as in the paper.
TARGET_DIAMETER = 9000.0

_CACHE: dict[tuple[str, float], SpatialGraph] = {}


def _approximate_diameter(graph: SpatialGraph, sweeps: int = 2) -> float:
    """Double-sweep lower bound on the weighted diameter."""
    ids = graph.node_ids()
    start = ids[0]
    best = 0.0
    for _ in range(sweeps):
        result = dijkstra(graph, start)
        far_node, far_dist = max(result.dist.items(), key=lambda kv: kv[1])
        best = max(best, far_dist)
        start = far_node
    return best


def normalize_weights(graph: SpatialGraph, target_diameter: float) -> SpatialGraph:
    """Rescale all edge weights so the weighted diameter ~ *target_diameter*.

    Coordinates are untouched — like the DCW data, the coordinate canvas
    and the weight scale are independent.
    """
    diameter = _approximate_diameter(graph)
    if diameter <= 0:
        return graph
    factor = target_diameter / diameter
    scaled = SpatialGraph()
    for node in graph.nodes():
        scaled.add_node(node.id, node.x, node.y)
    for u, v, w in graph.edges():
        scaled.add_edge(u, v, w * factor)
    return scaled


def dataset_names() -> list[str]:
    """The paper's dataset names in size order."""
    return ["DE", "ARG", "IND", "NA"]


def load_dataset(name: str, *, scale: float = DEFAULT_SCALE) -> SpatialGraph:
    """A synthetic stand-in for the named paper dataset at *scale*.

    The returned graph is connected (largest component of the
    generator's output) with nodes on the ``[0, 10000]^2`` canvas.
    """
    try:
        spec = DATASET_SPECS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown dataset {name!r}; choose from {dataset_names()}"
        ) from None
    if not 0 < scale <= 1:
        raise WorkloadError(f"scale must be in (0, 1], got {scale}")
    key = (name, scale)
    if key not in _CACHE:
        n_nodes = max(64, round(spec.paper_nodes * scale))
        graph = largest_component(road_network(n_nodes, seed=spec.seed))
        _CACHE[key] = normalize_weights(graph, TARGET_DIAMETER)
    return _CACHE[key]
