"""Command line interface.

Subcommands::

    repro-spv generate  --nodes 800 --seed 7 --out net.txt
    repro-spv info      net.txt            # also accepts .rspv artifacts
    repro-spv workload  net.txt --range 2000 --count 10 --out queries.txt
    repro-spv demo      net.txt --method HYP --queries 3
    repro-spv estimate  net.txt --range 2000
    repro-spv pack      net.txt --method LDM --out de.ldm.rspv --save-key owner.pub
    repro-spv partition net.txt --shards 4 --out-prefix de --save-key owner.pub
    repro-spv serve     net.txt --method DIJ --workload queries.txt
    repro-spv serve     net.txt --method DIJ --http 8350 --save-key owner.pub
    repro-spv serve     --artifact de.ldm.rspv --http 8350 --workers 4
    repro-spv serve     net.txt --router --manifest de.manifest.rspm \\
                        --shards de.shard0.rspv,de.shard1.rspv --http 8350
    repro-spv fetch     http://host:8350 3 9 --out r.bin --descriptor-out d.bin
    repro-spv verify    r.bin --key owner.pub --descriptor d.bin
    repro-spv loadtest  net.txt --method DIJ --range 2000 --passes 3
    repro-spv loadtest  net.txt --method DIJ --http
    repro-spv loadtest  --artifact de.ldm.rspv --http --workers 2 --key owner.pub
    repro-spv loadtest  --scenario steady-burst --http --workers 2 --insecure
    repro-spv loadtest  net.txt --scenario steady --http --url http://host:8350 \\
                        --key owner.pub
    repro-spv bench     net.txt --method DIJ --out BENCH_DIJ.json

``demo`` runs the full three-party protocol (build, answer, verify) and
prints per-query proof sizes; ``estimate`` prints the predictive sizing
model's ranking without building anything.  ``pack`` builds a method
once and freezes it into a ``.rspv`` artifact — the owner's offline
step; ``partition`` is the sharded variant of that step: it cuts the
graph into k shards, packs each shard as its own ``.rspv`` under its
own signed descriptor, and writes the owner-signed ``.rspm`` shard
manifest binding the partition to those descriptors (``info`` on the
manifest prints the shard map); ``serve --router`` then fronts the
shard fleet — embedded in-process from ``--shards a.rspv,b.rspv``, or
remote workers via ``--shard-urls`` — planning on the full graph,
fanning cross-shard queries out and stitching per-shard proofs into
one composite the client verifies against the manifest;
``loadtest --scenario X --url URL`` soaks such an already-running
router from outside.  ``serve --artifact`` (and ``loadtest
--artifact``) boot from
that file without the graph or the signer, and with ``--http`` plus
``--workers N`` pre-fork N ``SO_REUSEPORT`` worker processes that share
the port (and the page-cached artifact), printing aggregated metrics on
shutdown.  ``serve`` answers a request stream (workload file, or
interactive ``source target`` lines on stdin) through a cached
:class:`~repro.service.server.ProofServer` — or, with ``--http PORT``,
boots the wire-protocol HTTP frontend and serves until interrupted
(``--save-key`` writes the owner's public key file clients verify
against); ``fetch`` retrieves one response (and optionally the
descriptor) from a running HTTP service as artifact files; ``verify``
checks a serialized response file offline against a public key file —
the exit code is the verdict, so scripts can gate on it;
``loadtest`` replays one workload repeatedly against a single server and
prints a cold-versus-warm metrics table — with ``--updates N`` it
interleaves N owner re-weights through every pass, exercising the
live-update pipeline (incremental re-auth, versioned cache
invalidation, client freshness floors) under load, and with ``--http``
the whole replay instead crosses a real localhost socket through
``RemoteClient`` (wire QPS, bytes-on-wire vs proof bytes); ``bench`` profiles
one workload replay into a ``BENCH_*.json`` record (QPS, p50/p95,
construction seconds, proof bytes, and with ``--updates N`` the
incremental-update-versus-rebuild cost) and can gate on a checked-in
baseline (exit code 3 on regression) — the CI perf-smoke job runs it
against ``benchmarks/perf_baseline*.json``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from repro.bench.profile import (
    compare_records,
    load_record,
    profile_method,
    profile_updates,
    write_record,
)
from repro.bench.reporting import format_table
from repro.bench.serving import (
    HttpLoadtestReport,
    LoadtestReport,
    run_http_loadtest,
    run_loadtest,
)
from repro.core.estimate import ProofSizeModel
from repro.core.framework import Client, DataOwner, ServiceProvider
from repro.core.proofs import QueryResponse
from repro.crypto.signer import NullSigner, RsaSigner, load_public_key, save_public_key
from repro.errors import EncodingError, ReproError, ServiceError
from repro.graph.io import read_graph, read_workload, write_graph, write_workload
from repro.graph.synthetic import road_network
from repro.service.server import ProofServer
from repro.workload.datasets import normalize_weights
from repro.workload.queries import generate_workload


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = road_network(args.nodes, seed=args.seed, canvas=args.canvas)
    graph = normalize_weights(graph, args.diameter)
    write_graph(graph, args.out)
    print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to {args.out}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.shard import is_manifest
    from repro.store import is_artifact

    if is_manifest(args.graph):
        return _cmd_info_manifest(args.graph)
    if is_artifact(args.graph):
        return _cmd_info_artifact(args.graph)
    graph = read_graph(args.graph)
    degrees = [graph.degree(n) for n in graph.node_ids()]
    min_x, min_y, max_x, max_y = graph.bounding_box()
    rows = [
        ["nodes", graph.num_nodes],
        ["edges", graph.num_edges],
        ["edge/node ratio", graph.num_edges / graph.num_nodes],
        ["mean degree", sum(degrees) / len(degrees)],
        ["max degree", max(degrees)],
        ["canvas", f"[{min_x:.0f},{max_x:.0f}] x [{min_y:.0f},{max_y:.0f}]"],
    ]
    print(format_table(["property", "value"], rows, title=args.graph))
    return 0


def _cmd_info_artifact(path: str) -> int:
    """``info`` on a ``.rspv`` artifact: header, roots, section sizes."""
    from repro.store import artifact_info

    info = artifact_info(path)
    rows = [
        ["method", info.method],
        ["descriptor version", info.descriptor_version],
        ["graph version", info.graph_version],
        ["hash", info.hash_name],
        ["provider algorithm", info.algo_sp],
        ["sections", len(info.sections)],
        ["section bytes", f"{info.total_bytes / 1024:.1f} KB"],
        ["content digest", info.content_digest.hex()],
    ]
    for name, root in info.tree_roots:
        rows.append([f"root[{name}]", root.hex()])
    print(format_table(["property", "value"], rows,
                       title=f"{path} (.rspv artifact, sections verified)"))
    section_rows = [
        [s.name, s.kind, "x".join(map(str, s.shape)) or "-",
         f"{s.length / 1024:.1f}"]
        for s in info.sections
    ]
    print()
    print(format_table(["section", "kind", "shape", "KB"], section_rows))
    return 0


def _cmd_info_manifest(path: str) -> int:
    """``info`` on a ``.rspm`` shard manifest: the shard map."""
    from repro.shard import manifest_info

    info = manifest_info(path)
    rows = [
        ["kind", info["kind"]],
        ["method", info["method"]],
        ["graph version", info["version"]],
        ["strategy", info["strategy"]],
        ["shards", info["shards"]],
        ["boundary nodes", info["boundary_nodes"]],
    ]
    print(format_table(["property", "value"], rows,
                       title=f"{path} (.rspm shard manifest)"))
    entry_rows = [
        [entry["shard"], entry["nodes"], entry["boundary_nodes"],
         entry["descriptor_digest"]]
        for entry in info["entries"]
    ]
    print()
    print(format_table(
        ["shard", "core nodes", "boundary", "descriptor digest"], entry_rows))
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    """``pack``: build once (owner side) and freeze the serve state."""
    from repro.store import artifact_info, save_method

    owner, method, build_seconds = _published_method(args)
    if args.save_key:
        save_public_key(owner.signer, args.save_key)
        print(f"wrote owner public key to {args.save_key}")
    start = time.perf_counter()
    save_method(method, args.out)
    pack_seconds = time.perf_counter() - start
    info = artifact_info(args.out, verify=False)
    print(f"packed {args.method} (build {build_seconds:.2f}s, "
          f"pack {pack_seconds:.2f}s) into {args.out}: "
          f"{len(info.sections)} sections, "
          f"{info.total_bytes / 1024:.1f} KB, "
          f"descriptor version {info.descriptor_version}")
    print(f"content digest {info.content_digest.hex()}")
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    """``partition``: the owner's sharded publish, frozen to disk.

    Cuts the graph into ``--shards`` shards, builds one method per
    shard (each over its core+halo subgraph, under its own signed
    descriptor), packs each as ``PREFIX.shard<i>.rspv``, and writes the
    owner-signed shard manifest as ``PREFIX.manifest.rspm``.
    """
    import os

    from repro.shard import build_shards, save_manifest
    from repro.store import save_method

    graph = read_graph(args.graph)
    signer = NullSigner() if args.insecure else RsaSigner(bits=1024)
    params = {}
    if args.method == "LDM":
        params = dict(c=args.landmarks)
    elif args.method == "HYP":
        params = dict(num_cells=args.cells)
    start = time.perf_counter()
    build = build_shards(graph, signer, num_shards=args.shards,
                         method=args.method, strategy=args.strategy,
                         **params)
    build_seconds = time.perf_counter() - start
    if args.save_key:
        save_public_key(signer, args.save_key)
        print(f"wrote owner public key to {args.save_key}")
    rows = []
    for shard_id, method in enumerate(build.methods):
        path = f"{args.out_prefix}.shard{shard_id}.rspv"
        save_method(method, path)
        entry = build.manifest.entries[shard_id]
        rows.append([
            shard_id, path, entry.num_nodes,
            method.graph.num_nodes - entry.num_nodes,
            len(entry.boundary),
            os.path.getsize(path) / 1024,
            entry.descriptor_digest.hex()[:16],
        ])
    manifest_path = f"{args.out_prefix}.manifest.rspm"
    manifest_bytes = save_manifest(build.manifest, manifest_path)
    print(format_table(
        ["shard", "artifact", "core", "halo", "boundary", "KB", "digest"],
        rows,
        title=(f"{args.method} partition of {args.graph}: "
               f"{args.shards} shards by {args.strategy}, "
               f"{len(build.plan.cut_edges)} cut edges "
               f"(build {build_seconds:.2f}s)"),
    ))
    print(f"\nwrote signed shard manifest ({manifest_bytes} bytes, "
          f"graph version {build.manifest.version}) to {manifest_path}")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    graph = read_graph(args.graph)
    workload = generate_workload(graph, args.range, count=args.count,
                                 seed=args.seed, tolerance=1.0)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as out:
            write_workload(list(workload), out)
        print(f"wrote {len(workload)} queries to {args.out}")
    else:
        for vs, vt in workload:
            print(vs, vt)
    return 0


def _published_method(args: argparse.Namespace):
    """Build the requested method; returns ``(owner, method, seconds)``."""
    if not args.graph:
        raise ServiceError(
            f"{args.command} needs a graph file (or --artifact where supported)"
        )
    graph = read_graph(args.graph)
    signer = NullSigner() if args.insecure else RsaSigner(bits=1024)
    owner = DataOwner(graph, signer=signer)
    params = {}
    if args.method == "LDM":
        params = dict(c=args.landmarks)
    elif args.method == "HYP":
        params = dict(num_cells=args.cells)
    start = time.perf_counter()
    method = owner.publish(args.method, **params)
    return owner, method, time.perf_counter() - start


def _serving_method(args: argparse.Namespace):
    """Build from a graph file or cold-start from an artifact.

    Returns ``(owner | None, method, seconds)`` — the owner is ``None``
    for artifact-backed serving, which is the point: a serving box
    holds no signer.
    """
    if getattr(args, "artifact", None):
        from repro.store import load_method

        if args.graph:
            raise ServiceError("pass a graph file or --artifact, not both")
        start = time.perf_counter()
        method = load_method(args.artifact)
        return None, method, time.perf_counter() - start
    return _published_method(args)


def _verifier_for(owner, args: argparse.Namespace):
    """The client-side signature check: the owner's key, or --key."""
    if owner is not None:
        return owner.signer.verify
    if getattr(args, "key", None):
        return load_public_key(args.key).verify
    return None


def _cmd_demo(args: argparse.Namespace) -> int:
    owner, method, build_seconds = _published_method(args)
    graph = owner.graph
    provider = ServiceProvider(method)
    client = Client(owner.signer.verify)
    workload = generate_workload(graph, args.range, count=args.queries,
                                 seed=args.seed, tolerance=1.0)
    rows = []
    failures = 0
    for vs, vt in workload:
        response = provider.answer(vs, vt)
        verdict = client.verify(vs, vt, response)
        if not verdict.ok:
            failures += 1
        sizes = response.sizes()
        rows.append([f"{vs}->{vt}", response.path_cost, len(response.path_nodes),
                     sizes.total_kbytes, "ok" if verdict.ok else verdict.reason])
    print(format_table(
        ["query", "distance", "path nodes", "proof KB", "verdict"], rows,
        title=(f"{args.method} on {args.graph} "
               f"(hints {method.construction_seconds:.2f}s, "
               f"build total {build_seconds:.2f}s)"),
    ))
    return 1 if failures else 0


def _read_workload_file(path: str) -> "list[tuple[int, int]]":
    with open(path, "r", encoding="utf-8") as infile:
        return read_workload(infile)


def _read_requests(args: argparse.Namespace) -> "list[tuple[int, int]]":
    """The request stream for ``serve``: workload file, or stdin lines."""
    if args.workload:
        return _read_workload_file(args.workload)
    if sys.stdin.isatty():
        print("reading 'source target' queries from stdin "
              "(one per line, Ctrl-D to finish)", file=sys.stderr)
    return read_workload(sys.stdin)


def _metrics_table(s, title: str = "serving metrics") -> str:
    return format_table(
        ["requests", "QPS", "p50 ms", "p95 ms", "hit %", "proof KB",
         "evictions", "cache"],
        [[s.requests, s.qps, s.p50_ms, s.p95_ms,
          100.0 * s.hit_rate, s.proof_kbytes,
          s.cache_evictions, f"{s.cache_entries}/{s.cache_capacity}"]],
        title=title,
    )


def _cmd_serve_workers(args: argparse.Namespace) -> int:
    """``serve --artifact --http --workers N``: the pre-forked pool."""
    from repro.service.workers import WorkerPool

    frontend = "async" if args.async_frontend else "threaded"
    pool = WorkerPool(args.artifact, workers=args.workers, host=args.host,
                      port=args.http, cache_size=args.cache_size,
                      frontend=frontend)
    pool.start()
    print(f"{args.workers} {frontend} workers serving {args.artifact} on "
          f"{pool.url} (SO_REUSEPORT, cache {args.cache_size} per worker); "
          f"POST frames to {pool.url}/rpc, Ctrl-C to stop", flush=True)
    try:
        while True:
            time.sleep(3600.0)
    except KeyboardInterrupt:
        print("\nshutting down workers")
    finally:
        aggregate = pool.stop()
    print(_metrics_table(aggregate, title="aggregated serving metrics"))
    per_worker = ", ".join(str(s.requests) for s in pool.worker_snapshots)
    print(f"requests per worker: [{per_worker}]")
    return 0


def _cmd_serve_router(args: argparse.Namespace) -> int:
    """``serve --router``: front a shard fleet on one wire endpoint.

    The graph positional is the *full* network — the router plans
    global shortest paths on it, then fans segments out to the shard
    workers.  Workers come from ``--shard-urls`` (already-running
    remote endpoints, one pooled connection each) or ``--shards``
    (per-shard ``.rspv`` artifacts served embedded in this process —
    the single-box demo of the sharded topology).
    """
    import contextlib

    from repro.api.transport import InProcessTransport, PooledHttpTransport
    from repro.service.http import ProofHttpServer
    from repro.service.router import ShardRouter
    from repro.shard import load_manifest
    from repro.store import load_method

    if args.http is None:
        raise ServiceError(
            "serve --router fronts the wire protocol; add --http PORT")
    if not args.graph:
        raise ServiceError(
            "serve --router needs the full graph file for route planning")
    if args.artifact:
        raise ServiceError(
            "--artifact is the single-box path; a router takes --shards "
            "(artifact list) or --shard-urls")
    if not args.manifest:
        raise ServiceError(
            "serve --router needs --manifest (the signed .rspm file "
            "written by repro-spv partition)")
    if bool(args.shards) == bool(args.shard_urls):
        raise ServiceError(
            "serve --router needs exactly one of --shards (embedded "
            "workers from artifacts) or --shard-urls (remote workers)")
    manifest = load_manifest(args.manifest)
    graph = read_graph(args.graph)
    with contextlib.ExitStack() as stack:
        if args.shard_urls:
            backends = [url.strip() for url in args.shard_urls.split(",")]
            transports = [
                stack.enter_context(PooledHttpTransport(url))
                for url in backends
            ]
            source = f"remote workers {backends}"
        else:
            paths = [path.strip() for path in args.shards.split(",")]
            transports = []
            for path in paths:
                server = ProofServer(load_method(path),
                                     cache_size=args.cache_size)
                transports.append(InProcessTransport(server.dispatcher()))
            source = f"embedded workers from {paths}"
        router = stack.enter_context(
            ShardRouter(manifest, transports, graph))
        if args.async_frontend:
            from repro.service.aio import AsyncProofHttpServer

            http_server = AsyncProofHttpServer(router, host=args.host,
                                               port=args.http)
        else:
            http_server = ProofHttpServer(router, host=args.host,
                                          port=args.http)
        print(f"{manifest.method} shard router on {http_server.url}: "
              f"{manifest.num_shards} shards "
              f"({manifest.num_boundary_nodes} boundary nodes, "
              f"manifest {args.manifest}), {source}; "
              f"POST frames to {http_server.url}/rpc, Ctrl-C to stop",
              flush=True)
        try:
            http_server.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down router")
        finally:
            http_server.close()
        print(_metrics_table(router.metrics.snapshot(),
                             title="router metrics"))
    return 0


def _cmd_serve_http(args: argparse.Namespace) -> int:
    """``serve --http``: the wire-protocol frontend, until interrupted."""
    from repro.service.http import ProofHttpServer

    if args.workers > 1:
        if not args.artifact:
            raise ServiceError(
                "serve --http --workers N pre-forks worker processes, which "
                "boot from a shared artifact; pack one first "
                "(repro-spv pack) and pass --artifact"
            )
        if args.allow_updates:
            raise ServiceError(
                "worker processes hold no signing key; updates flow through "
                "a new artifact from the owner, not wire pushes"
            )
        return _cmd_serve_workers(args)
    owner, method, build_seconds = _serving_method(args)
    if args.save_key:
        if owner is None:
            raise ServiceError(
                "--save-key needs the building side; artifact-backed "
                "serving holds no key material"
            )
        save_public_key(owner.signer, args.save_key)
        print(f"wrote owner public key to {args.save_key}")
    server = ProofServer(method, cache_size=args.cache_size,
                         max_workers=args.workers)
    # The wire protocol carries no authentication, so honouring update
    # pushes means anyone who can reach the socket can mutate the graph
    # and have this process re-sign it with the owner's key.  That is
    # only acceptable as an explicit opt-in for trusted-network demos;
    # the default endpoint serves proofs and refuses pushes
    # (updates-not-supported), exactly like a provider that holds no
    # signing key.  Artifact-backed serving has no key to begin with.
    if args.allow_updates and owner is None:
        raise ServiceError(
            "an artifact-backed service holds no signing key; it cannot "
            "honour wire update pushes"
        )
    update_signer = owner.signer if args.allow_updates else None
    dispatcher = server.dispatcher(update_signer=update_signer)
    if args.async_frontend:
        from repro.service.aio import AsyncProofHttpServer

        http_server = AsyncProofHttpServer(dispatcher, host=args.host,
                                           port=args.http)
    else:
        http_server = ProofHttpServer(dispatcher, host=args.host,
                                      port=args.http)
    pushes = ("enabled — trusted networks only" if args.allow_updates
              else "disabled")
    source = f"artifact {args.artifact}" if owner is None else \
        f"build {build_seconds:.2f}s"
    frontend = "async frontend" if args.async_frontend else "threaded frontend"
    print(f"{method.name} proof service on {http_server.url} "
          f"({source}, {frontend}, cache {args.cache_size}, "
          f"update pushes {pushes}); "
          f"POST frames to {http_server.url}/rpc, Ctrl-C to stop",
          flush=True)
    try:
        http_server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        http_server.close()
    print(_metrics_table(server.snapshot()))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.router:
        return _cmd_serve_router(args)
    if args.manifest or args.shards or args.shard_urls:
        raise ServiceError(
            "--manifest/--shards/--shard-urls configure the shard router; "
            "add --router")
    if args.http is not None:
        return _cmd_serve_http(args)
    if args.async_frontend:
        raise ServiceError(
            "--async selects the HTTP event-loop frontend; add --http PORT")
    owner, method, build_seconds = _serving_method(args)
    if args.save_key:
        if owner is None:
            raise ServiceError(
                "--save-key needs the building side; artifact-backed "
                "serving holds no key material"
            )
        save_public_key(owner.signer, args.save_key)
        print(f"wrote owner public key to {args.save_key}")
    verify_signature = _verifier_for(owner, args)
    client = Client(verify_signature) if verify_signature else None
    server = ProofServer(method, cache_size=args.cache_size,
                         max_workers=args.workers)
    queries = _read_requests(args)
    server.reset_metrics()  # exclude stream reading from the window
    combined = None
    if args.workers > 1:
        served = server.answer_concurrent(queries)
    else:
        burst = server.serve_burst(queries, coalesce=not args.no_coalesce)
        served = burst.served
        combined = burst.combined
    snapshot = server.snapshot()  # freeze before verification/printing
    failures = 0
    rows = []
    for (vs, vt), item in zip(queries, served):
        if not item.ok:
            failures += 1
            rows.append([f"{vs}->{vt}", "-", "-", "-",
                         item.serve_seconds * 1000, f"error: {item.error}"])
            continue
        if client is None:
            verdict_cell = "unchecked (no --key)"
        else:
            verdict = client.verify(vs, vt, item.response)
            if not verdict.ok:
                failures += 1
            verdict_cell = "ok" if verdict.ok else verdict.reason
        rows.append([
            f"{vs}->{vt}", item.response.path_cost,
            item.proof_bytes / 1024, "hit" if item.cached else "miss",
            item.serve_seconds * 1000,
            verdict_cell,
        ])
    source = (f"artifact {args.artifact} (cold start {build_seconds:.2f}s)"
              if owner is None else
              f"{args.graph} (build {build_seconds:.2f}s)")
    print(format_table(
        ["query", "distance", "proof KB", "cache", "serve ms", "verdict"],
        rows,
        title=(f"{method.name} proof server on {source}, "
               f"cache {args.cache_size}"),
    ))
    if combined is not None:
        standalone = sum(item.proof_bytes for item in served
                         if item.ok and not item.cached)
        print(f"\nburst shipped as one combined cover: "
              f"{combined.total_bytes / 1024:.1f} KB "
              f"(standalone responses would total {standalone / 1024:.1f} KB)")
    print()
    print(_metrics_table(snapshot))
    return 1 if failures else 0


def _cmd_loadtest_workers(args: argparse.Namespace) -> int:
    """``loadtest --artifact --http``: concurrent replay against a pool."""
    from repro.bench.serving import WorkerLoadtestReport, run_worker_loadtest

    if args.updates:
        raise ServiceError(
            "worker processes hold no signing key, so --updates cannot run "
            "against a pool; use the single-server loadtest for update-aware "
            "replays"
        )
    if args.async_clients:
        raise ServiceError(
            "--async-clients drives the in-process loadtest; against a "
            "worker pool use --scenario with --client-mode async"
        )
    if args.save_key:
        raise ServiceError(
            "--save-key needs the building side; an artifact-backed loadtest "
            "holds no key material"
        )
    if args.workload:
        queries = _read_workload_file(args.workload)
    else:
        # The artifact supplies the workload substrate: its graph is
        # exactly the one the service answers about.  Loaded only for
        # generation — the pool's workers each load their own copy.
        from repro.store import load_method

        queries = list(generate_workload(load_method(args.artifact).graph,
                                         args.range, count=args.count,
                                         seed=args.seed, tolerance=1.0))
    report = run_worker_loadtest(
        args.artifact, queries, workers=args.workers, passes=args.passes,
        cache_size=args.cache_size,
        verify_signature=_verifier_for(None, args),
    )
    print(format_table(
        list(WorkerLoadtestReport.TABLE_HEADERS), report.table_rows(),
        title=(f"{report.method} worker-pool load test: {len(queries)} "
               f"queries x {args.passes} passes, {args.workers} workers "
               f"({report.client_threads} client threads) via {report.url}"),
    ))
    aggregate = report.aggregate_metrics
    print(f"\nserver aggregate: {aggregate.get('requests', 0)} requests, "
          f"hit rate {100.0 * aggregate.get('hit_rate', 0.0):.0f}%, "
          f"evictions {aggregate.get('cache_evictions', 0)}; "
          f"requests per worker {list(report.worker_requests)}")
    if not report.all_verified:
        print("error: some wire responses failed", file=sys.stderr)
        return 1
    return 0


def _cmd_loadtest_scenario(args: argparse.Namespace) -> int:
    """``loadtest --scenario``: a phased SLO soak with scenario traffic.

    Without a graph or ``--artifact`` the soak self-provisions the
    standard synthetic road network, so
    ``repro-spv loadtest --scenario steady-burst --http --workers 2``
    is a complete command.  In that inline mode ``--workers`` sets the
    *client* pool size (one HTTP server answers); with ``--artifact``
    it sizes the ``SO_REUSEPORT`` worker pool and ``--clients`` sizes
    the client pool.  Exit codes: 1 on any verification failure or
    untyped garbage exception, 3 on an ``--slo`` policy violation.
    """
    import json
    import os
    import tempfile

    from repro.bench.slo import (
        SloReport,
        check_slo,
        load_slo_policy,
        run_slo_soak,
    )
    from repro.workload.traffic import get_scenario

    if not args.http:
        raise ServiceError("loadtest --scenario drives the wire path; add --http")
    if args.async_clients:
        raise ServiceError(
            "--scenario sizes its client pool with --clients; add "
            "--client-mode async for coroutine clients")
    if args.async_frontend and args.url:
        raise ServiceError(
            "--async selects the frontend of the server this soak boots; "
            "an external --url endpoint's frontend is its own")
    frontend = "async" if args.async_frontend else "threaded"
    scenario = get_scenario(args.scenario)
    if args.events_scale != 1.0:
        scenario = scenario.scaled(args.events_scale)

    if args.url:
        if not args.key:
            raise ServiceError(
                "an external-endpoint soak needs --key (the owner's public "
                "key file) for the client processes to verify against"
            )
        if not args.graph:
            raise ServiceError(
                "loadtest --url needs the graph file the endpoint serves "
                "(the workload substrate); the endpoint itself is not "
                "asked for it"
            )
        clients = args.clients or 2
        report = run_slo_soak(
            None, scenario, key_path=args.key, clients=clients,
            client_mode=args.client_mode, seed=args.seed,
            time_scale=args.time_scale, cache_size=args.cache_size,
            url=args.url, graph=read_graph(args.graph),
        )
        source = f"external endpoint {args.url}"
    elif args.artifact:
        from repro.store import load_method

        if not args.key:
            raise ServiceError(
                "an artifact-backed soak needs --key (the owner's public "
                "key file) for the client processes to verify against"
            )
        method = load_method(args.artifact)  # trace substrate only
        key_path = args.key
        clients = args.clients or 2
        report = run_slo_soak(
            method, scenario, key_path=key_path,
            clients=clients, client_mode=args.client_mode, seed=args.seed,
            time_scale=args.time_scale, cache_size=args.cache_size,
            artifact_path=args.artifact, workers=args.workers,
            frontend=frontend,
        )
        source = f"artifact {args.artifact}, {args.workers} workers"
    else:
        if args.graph:
            owner, method, _ = _published_method(args)
            source = args.graph
        else:
            # Self-provisioned substrate: the standard synthetic network.
            graph = normalize_weights(road_network(300, seed=42), 4500.0)
            signer = NullSigner() if args.insecure else RsaSigner(bits=1024)
            owner = DataOwner(graph, signer=signer)
            method = owner.publish(args.method)
            source = "synthetic road network (300 nodes)"
        if args.save_key:
            key_path = args.save_key
        else:
            handle, key_path = tempfile.mkstemp(suffix=".pub",
                                                prefix="repro-slo-")
            os.close(handle)
        save_public_key(owner.signer, key_path)
        clients = args.clients or max(1, args.workers)
        report = run_slo_soak(
            method, scenario, key_path=key_path,
            update_signer=owner.signer, clients=clients,
            client_mode=args.client_mode, seed=args.seed,
            time_scale=args.time_scale, cache_size=args.cache_size,
            frontend=frontend,
        )
        if not args.save_key:
            os.unlink(key_path)

    print(format_table(
        list(SloReport.TABLE_HEADERS), report.table_rows(),
        title=(f"{report.method} SLO soak '{scenario.name}' on {source}: "
               f"{clients} {args.client_mode} clients, seed {args.seed}, "
               f"trace {report.trace_digest}"),
    ))
    print(f"\nsaturation {report.saturation_qps:.1f} QPS, "
          f"{report.total_queries} queries verified end-to-end, "
          f"{report.updates_pushed} update pushes "
          f"(final version {report.final_version}), "
          f"{report.verification_failures} verification failures, "
          f"{report.untyped_garbage} untyped garbage exceptions")
    if report.worker_requests:
        print(f"requests per worker: {list(report.worker_requests)}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as out:
            json.dump(report.as_dict(), out, indent=2, sort_keys=True)
        print(f"wrote soak report to {args.out}")
    if not report.all_verified or report.untyped_garbage:
        for phase in report.phases:
            for failure in phase.failures:
                print(f"  {phase.name}: {failure}", file=sys.stderr)
        for failure in report.freshness_failures:
            print(f"  freshness: {failure}", file=sys.stderr)
        print("error: the soak is unsound (see failures above)",
              file=sys.stderr)
        return 1
    if args.slo:
        violations = check_slo(report, load_slo_policy(args.slo))
        if violations:
            print(f"\nSLO violations vs {args.slo}:", file=sys.stderr)
            for violation in violations:
                print(f"  {violation}", file=sys.stderr)
            return 3
        print(f"\nwithin SLO policy {args.slo}")
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    if args.scenario:
        return _cmd_loadtest_scenario(args)
    if args.url:
        raise ServiceError(
            "loadtest --url drives an already-running endpoint with "
            "scenario traffic; add --scenario (e.g. --scenario steady)")
    if args.artifact:
        if not args.http:
            raise ServiceError(
                "loadtest --artifact drives the multi-process wire path; "
                "add --http"
            )
        return _cmd_loadtest_workers(args)
    if (args.async_clients or args.async_frontend) and not args.http:
        raise ServiceError(
            "--async/--async-clients drive the wire path; add --http")
    owner, method, build_seconds = _published_method(args)
    if args.save_key:
        save_public_key(owner.signer, args.save_key)
        print(f"wrote owner public key to {args.save_key}")
    if args.http and args.workers > 1:
        print("note: --workers applies to the in-process pool only; "
              "HTTP concurrency comes from the threaded frontend",
              file=sys.stderr)
    if args.workload:
        queries = _read_workload_file(args.workload)
    else:
        queries = list(generate_workload(owner.graph, args.range,
                                         count=args.count, seed=args.seed,
                                         tolerance=1.0))
    if args.http:
        report = run_http_loadtest(
            method, queries, owner.signer.verify,
            passes=args.passes, cache_size=args.cache_size,
            updates_per_pass=args.updates, update_signer=owner.signer,
            update_seed=args.seed,
            keep_alive=not args.no_keepalive, batch_size=args.batch_size,
            async_clients=args.async_clients,
            async_frontend=args.async_frontend,
        )
        frontend = "async" if args.async_frontend else "threaded"
        driver = (f"{args.async_clients} async clients"
                  if args.async_clients else "1 driver connection")
        print(format_table(
            list(HttpLoadtestReport.TABLE_HEADERS), report.table_rows(),
            title=(f"{args.method} HTTP load test: {len(queries)} queries x "
                   f"{args.passes} passes on {args.graph} via {report.url} "
                   f"({frontend} frontend, {driver}, "
                   f"build {build_seconds:.2f}s)"),
        ))
        print(f"\nwarm/cold wire speedup: {report.speedup:.1f}x, "
              f"bytes-on-wire / proof bytes: {report.wire_overhead_ratio:.4f}x")
        if report.server_metrics:
            sm = report.server_metrics
            print(f"server /metrics: {sm['requests']} requests, "
                  f"hit rate {100.0 * sm['hit_rate']:.0f}%, "
                  f"evictions {sm['cache_evictions']}, "
                  f"invalidations {sm['cache_invalidations']}, "
                  f"cache {sm['cache_entries']}/{sm['cache_capacity']}")
        if not report.all_verified:
            print("error: some wire responses failed client verification",
                  file=sys.stderr)
            return 1
        return 0
    report = run_loadtest(
        method, queries, owner.signer.verify,
        passes=args.passes, cache_size=args.cache_size,
        coalesce=not args.no_coalesce, workers=args.workers,
        updates_per_pass=args.updates, update_signer=owner.signer,
        update_seed=args.seed,
    )
    print(format_table(
        list(LoadtestReport.TABLE_HEADERS), report.table_rows(),
        title=(f"{args.method} load test: {len(queries)} queries x "
               f"{args.passes} passes on {args.graph} "
               f"(build {build_seconds:.2f}s)"),
    ))
    print(f"\nwarm/cold speedup: {report.speedup:.1f}x, "
          f"warm hit rate {100.0 * report.warm.snapshot.hit_rate:.0f}%")
    if not report.all_verified:
        print("error: some served proofs failed client verification",
              file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    owner, method, build_seconds = _published_method(args)
    if args.workload:
        queries = _read_workload_file(args.workload)
    else:
        queries = list(generate_workload(owner.graph, args.range,
                                         count=args.count, seed=args.seed,
                                         tolerance=1.0))
    # Warm pass: the record measures the steady-state provider, not
    # lazy one-time initialization (compiled index, import costs).
    profile_method(method, queries[:1], label=args.label)
    record = profile_method(method, queries, owner.signer.verify,
                            label=args.label)
    if args.updates:
        record = dataclasses.replace(record, **profile_updates(
            method, owner.signer, count=args.updates, seed=args.seed))
    rows = [["method", record.method],
            ["queries", record.queries],
            ["QPS", record.qps],
            ["p50 ms", record.p50_ms],
            ["p95 ms", record.p95_ms],
            ["construction s", record.construction_seconds],
            ["network tree s", record.network_tree_seconds],
            ["proof bytes", record.proof_bytes],
            ["verified", str(record.verified)]]
    if record.updates:
        rows.extend([
            ["updates", record.updates],
            ["update ms", 1000.0 * record.update_seconds],
            ["rebuild s", record.rebuild_seconds],
            ["update speedup", record.update_speedup],
        ])
    print(format_table(
        ["metric", "value"], rows,
        title=(f"{args.method} bench on {args.graph} "
               f"(build {build_seconds:.2f}s)"),
    ))
    if args.out:
        write_record(record, args.out)
        print(f"\nwrote record to {args.out}")
    if not record.verified:
        print("error: client rejected a served proof", file=sys.stderr)
        return 1
    if args.baseline:
        problems = compare_records(record.as_dict(), load_record(args.baseline),
                                   max_regression=args.max_regression)
        if problems:
            print(f"\nperformance regression vs {args.baseline}:",
                  file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 3
        print(f"\nwithin {args.max_regression:g}x of baseline {args.baseline}")
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    """Fetch one response (and the descriptor) from a running service."""
    from repro.api.client import RemoteClient
    from repro.api.transport import HttpTransport

    if args.key:
        verify_signature = load_public_key(args.key).verify
    else:
        # No key, no verdict: the artifact is fetched for later offline
        # verification (``repro-spv verify``), so accept any signature
        # here rather than pretending to check one.
        verify_signature = lambda message, signature: True  # noqa: E731
    client = RemoteClient(HttpTransport(args.url), verify_signature,
                          min_descriptor_version=args.min_version)
    hello = client.hello()
    print(f"service: method {hello.method}, protocol v{hello.version}, "
          f"descriptor version {hello.descriptor_version}")
    if args.descriptor_out:
        _, descriptor_bytes = client.fetch_descriptor()
        with open(args.descriptor_out, "wb") as out:
            out.write(descriptor_bytes)
        print(f"wrote descriptor ({len(descriptor_bytes)} bytes) "
              f"to {args.descriptor_out}")
    result = client.query(args.source, args.target)
    if result.response_bytes is None:
        print(f"error: server refused: {result.verdict.reason} "
              f"{result.verdict.detail}", file=sys.stderr)
        return 1
    with open(args.out, "wb") as out:
        out.write(result.response_bytes)
    print(f"wrote response ({len(result.response_bytes)} bytes, "
          f"{result.wire_bytes} on the wire) to {args.out}")
    if args.key:
        print(f"verdict: {'ok' if result.ok else result.verdict.reason}")
        return 0 if result.ok else 1
    print("verdict: not checked (no --key); verify offline with "
          "`repro-spv verify`")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Verify a response artifact; the exit code is the verdict."""
    with open(args.response, "rb") as infile:
        data = infile.read()
    client = Client(load_public_key(args.key).verify,
                    min_descriptor_version=args.min_version)
    source, target = args.source, args.target
    decoded: "QueryResponse | None" = None
    if source is None or target is None or args.descriptor:
        # The query pair defaults to the one recorded in the response;
        # passing --source/--target pins the artifact to *your* query,
        # which is the stronger check.
        try:
            decoded = QueryResponse.decode(data)
        except EncodingError as exc:
            print(f"reject: malformed-response — {exc}")
            return 1
        source = source if source is not None else decoded.source
        target = target if target is not None else decoded.target
    if args.descriptor:
        with open(args.descriptor, "rb") as infile:
            trusted = infile.read()
        if decoded.descriptor.encode() != trusted:
            print("reject: descriptor-mismatch — response descriptor differs "
                  f"from the trusted copy in {args.descriptor}")
            return 1
    result = client.verify_bytes(source, target, data)
    if result.ok:
        print(f"ok: {source} -> {target} verified "
              f"({len(data)} response bytes)")
        return 0
    print(f"reject: {result.reason} — {result.detail}")
    return 1


def _cmd_estimate(args: argparse.Namespace) -> int:
    graph = read_graph(args.graph)
    model = ProofSizeModel.for_graph(graph)
    rows = [
        [name, bytes_ / 1024]
        for name, bytes_ in model.rank(args.range)
    ]
    print(format_table(
        ["method", "predicted proof KB"], rows,
        title=f"predicted proof sizes at range {args.range:g} (smallest first)",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-spv",
        description="Authenticated shortest path verification (ICDE 2010 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic road network")
    gen.add_argument("--nodes", type=int, default=800)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--canvas", type=float, default=10_000.0)
    gen.add_argument("--diameter", type=float, default=9_000.0)
    gen.add_argument("--out", required=True)
    gen.set_defaults(fn=_cmd_generate)

    info = sub.add_parser("info", help="print statistics of a graph file")
    info.add_argument("graph")
    info.set_defaults(fn=_cmd_info)

    wl = sub.add_parser("workload", help="generate a query workload")
    wl.add_argument("graph")
    wl.add_argument("--range", type=float, default=2000.0)
    wl.add_argument("--count", type=int, default=10)
    wl.add_argument("--seed", type=int, default=0)
    wl.add_argument("--out")
    wl.set_defaults(fn=_cmd_workload)

    demo = sub.add_parser("demo", help="run the full three-party protocol")
    demo.add_argument("graph")
    demo.add_argument("--method", choices=["DIJ", "FULL", "LDM", "HYP"],
                      default="HYP")
    demo.add_argument("--range", type=float, default=2000.0)
    demo.add_argument("--queries", type=int, default=3)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--landmarks", type=int, default=50)
    demo.add_argument("--cells", type=int, default=49)
    demo.add_argument("--insecure", action="store_true",
                      help="use the keyed-hash stub signer (fast, no RSA)")
    demo.set_defaults(fn=_cmd_demo)

    est = sub.add_parser("estimate", help="predict proof sizes without building")
    est.add_argument("graph")
    est.add_argument("--range", type=float, default=2000.0)
    est.set_defaults(fn=_cmd_estimate)

    pack = sub.add_parser(
        "pack", help="build a method and freeze it into a .rspv artifact")
    pack.add_argument("graph")
    pack.add_argument("--method", choices=["DIJ", "FULL", "LDM", "HYP"],
                      default="LDM")
    pack.add_argument("--landmarks", type=int, default=50)
    pack.add_argument("--cells", type=int, default=49)
    pack.add_argument("--insecure", action="store_true",
                      help="use the keyed-hash stub signer (fast, no RSA)")
    pack.add_argument("--out", required=True,
                      help="artifact path (conventionally *.rspv)")
    pack.add_argument("--save-key",
                      help="also write the owner's public key file — "
                           "distribute it with the artifact so serving "
                           "boxes never see the private key")
    pack.set_defaults(fn=_cmd_pack)

    part = sub.add_parser(
        "partition",
        help="cut a graph into shards: per-shard .rspv artifacts plus a "
             "signed .rspm shard manifest")
    part.add_argument("graph")
    part.add_argument("--shards", type=int, default=2,
                      help="number of shards to cut the graph into")
    part.add_argument("--strategy", choices=["hilbert", "grid"],
                      default="hilbert",
                      help="spatial ordering behind the balanced cut")
    part.add_argument("--method", choices=["DIJ", "FULL", "LDM", "HYP"],
                      default="DIJ")
    part.add_argument("--landmarks", type=int, default=50)
    part.add_argument("--cells", type=int, default=49)
    part.add_argument("--insecure", action="store_true",
                      help="use the keyed-hash stub signer (fast, no RSA)")
    part.add_argument("--out-prefix", required=True,
                      help="writes PREFIX.shard<i>.rspv and "
                           "PREFIX.manifest.rspm")
    part.add_argument("--save-key",
                      help="also write the owner's public key file — one "
                           "key verifies every shard and the manifest")
    part.set_defaults(fn=_cmd_partition)

    def add_server_args(p: argparse.ArgumentParser,
                        default_method: str) -> None:
        p.add_argument("graph", nargs="?",
                       help="network file (omit when using --artifact)")
        p.add_argument("--artifact",
                       help="cold-start from a packed .rspv artifact "
                            "instead of building (no graph, no signer)")
        p.add_argument("--method", choices=["DIJ", "FULL", "LDM", "HYP"],
                       default=default_method)
        p.add_argument("--landmarks", type=int, default=50)
        p.add_argument("--cells", type=int, default=49)
        p.add_argument("--insecure", action="store_true",
                       help="use the keyed-hash stub signer (fast, no RSA)")
        p.add_argument("--cache-size", type=int, default=1024,
                       help="LRU proof cache capacity")
        p.add_argument("--workers", type=int, default=1,
                       help="without --http: thread-pool size (>1 disables "
                            "coalescing); with --http + --artifact: number "
                            "of pre-forked SO_REUSEPORT worker processes")
        p.add_argument("--no-coalesce", action="store_true",
                       help="answer bursts per query instead of batching")
        p.add_argument("--async", dest="async_frontend", action="store_true",
                       help="with --http: serve through the asyncio "
                            "event-loop frontend instead of the "
                            "thread-per-connection one (same wire protocol; "
                            "lifts the concurrent-connection ceiling)")
        p.add_argument("--save-key",
                       help="write the owner's public key file (for "
                            "`repro-spv verify` / RemoteClient users)")
        p.add_argument("--key",
                       help="owner public key file, to verify served "
                            "responses when running from an artifact")

    serve = sub.add_parser(
        "serve", help="answer a request stream through a cached proof server")
    add_server_args(serve, default_method="DIJ")
    serve.add_argument("--workload",
                       help="query file (default: read stdin lines)")
    serve.add_argument("--http", type=int, metavar="PORT",
                       help="serve the wire protocol over HTTP on PORT "
                            "(0 picks an ephemeral port) until interrupted")
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind with --http (default "
                            "loopback; 0.0.0.0 exposes the service)")
    serve.add_argument("--allow-updates", action="store_true",
                       help="honour wire update pushes by re-signing with "
                            "the owner key (UNAUTHENTICATED — trusted "
                            "networks only; default: refuse pushes)")
    serve.add_argument("--router", action="store_true",
                       help="front a sharded fleet: plan on the full graph, "
                            "fan cross-shard queries out, stitch proofs "
                            "(needs --manifest plus --shards or "
                            "--shard-urls, and --http)")
    serve.add_argument("--manifest",
                       help="signed .rspm shard manifest "
                            "(from repro-spv partition)")
    serve.add_argument("--shards",
                       help="comma-separated per-shard .rspv artifacts, "
                            "served embedded in the router process")
    serve.add_argument("--shard-urls",
                       help="comma-separated base URLs of already-running "
                            "shard workers (one pooled connection each)")
    serve.set_defaults(fn=_cmd_serve)

    fetch = sub.add_parser(
        "fetch", help="fetch one response from a running HTTP service")
    fetch.add_argument("url", help="service base URL, e.g. http://host:8350")
    fetch.add_argument("source", type=int)
    fetch.add_argument("target", type=int)
    fetch.add_argument("--out", required=True,
                       help="write the serialized response here")
    fetch.add_argument("--descriptor-out",
                       help="also save the signed descriptor")
    fetch.add_argument("--key",
                       help="owner public key file: verify before saving")
    fetch.add_argument("--min-version", type=int,
                       help="freshness floor (reject older descriptors)")
    fetch.set_defaults(fn=_cmd_fetch)

    ver = sub.add_parser(
        "verify", help="verify a response artifact; exit code is the verdict")
    ver.add_argument("response", help="serialized QueryResponse file")
    ver.add_argument("--key", required=True,
                     help="owner public key file (see serve --save-key)")
    ver.add_argument("--descriptor",
                     help="trusted descriptor file the response must match")
    ver.add_argument("--min-version", type=int,
                     help="freshness floor (reject older descriptors)")
    ver.add_argument("--source", type=int,
                     help="expected query source (default: from the response)")
    ver.add_argument("--target", type=int,
                     help="expected query target (default: from the response)")
    ver.set_defaults(fn=_cmd_verify)

    lt = sub.add_parser(
        "loadtest", help="replay a workload cold vs warm and print metrics")
    add_server_args(lt, default_method="DIJ")
    lt.add_argument("--workload", help="query file (default: generate)")
    lt.add_argument("--http", action="store_true",
                    help="drive the workload over a real localhost HTTP "
                         "socket through RemoteClient (wire-level metrics)")
    lt.add_argument("--no-keepalive", action="store_true",
                    help="with --http: dial a fresh connection per frame "
                         "instead of reusing one persistent connection "
                         "(the measurement baseline)")
    lt.add_argument("--batch-size", type=int, default=0,
                    help="with --http: send queries as multiproof BATCH "
                         "frames of this many queries instead of per-query "
                         "QUERY frames (0 = per-query)")
    lt.add_argument("--async-clients", type=int, default=0,
                    help="with --http: drive the workload with this many "
                         "persistent event-loop clients on one thread "
                         "instead of the single-connection driver "
                         "(0 = single driver)")
    lt.add_argument("--range", type=float, default=2000.0)
    lt.add_argument("--count", type=int, default=20)
    lt.add_argument("--seed", type=int, default=0)
    lt.add_argument("--passes", type=int, default=2,
                    help="total passes; the first is cold, the rest warm")
    lt.add_argument("--updates", type=int, default=0,
                    help="owner re-weights interleaved through every pass "
                         "(exercises incremental re-auth + cache invalidation)")
    lt.add_argument("--scenario",
                    help="run a phased SLO soak with this registered traffic "
                         "scenario (e.g. steady-burst) instead of a plain "
                         "replay; requires --http, self-provisions a "
                         "synthetic network when no graph is given")
    lt.add_argument("--url",
                    help="with --scenario: soak this already-running "
                         "endpoint (e.g. a shard router) instead of booting "
                         "a server; needs the graph positional (workload "
                         "substrate) and --key")
    lt.add_argument("--clients", type=int, default=0,
                    help="scenario client pool size (default: --workers "
                         "inline, 2 against an artifact pool)")
    lt.add_argument("--client-mode",
                    choices=["process", "thread", "async"],
                    default="process",
                    help="scenario clients as real processes (default), "
                         "in-process threads (faster startup), or "
                         "coroutines on one event loop (scales to "
                         "hundreds of connections)")
    lt.add_argument("--time-scale", type=float, default=1.0,
                    help="stretch (>1) or compress (<1) scenario arrival "
                         "timestamps")
    lt.add_argument("--events-scale", type=float, default=1.0,
                    help="scale every scenario phase's event count")
    lt.add_argument("--slo",
                    help="SLO policy JSON to gate the soak against "
                         "(exit code 3 on violation)")
    lt.add_argument("--out",
                    help="write the scenario soak report as a JSON file")
    lt.set_defaults(fn=_cmd_loadtest)

    bench = sub.add_parser(
        "bench", help="profile a workload replay into a BENCH_*.json record")
    bench.add_argument("graph")
    bench.add_argument("--method", choices=["DIJ", "FULL", "LDM", "HYP"],
                       default="DIJ")
    bench.add_argument("--landmarks", type=int, default=50)
    bench.add_argument("--cells", type=int, default=49)
    bench.add_argument("--insecure", action="store_true",
                       help="use the keyed-hash stub signer (fast, no RSA)")
    bench.add_argument("--workload", help="query file (default: generate)")
    bench.add_argument("--range", type=float, default=2000.0)
    bench.add_argument("--count", type=int, default=20)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--updates", type=int, default=0,
                       help="also measure N incremental single-edge updates "
                            "against one full rebuild")
    bench.add_argument("--label", default="",
                       help="free-form label stored in the record")
    bench.add_argument("--out", help="write the record as a JSON file")
    bench.add_argument("--baseline",
                       help="baseline record to gate against "
                            "(exit code 3 on regression)")
    bench.add_argument("--max-regression", type=float, default=2.0,
                       help="fail when any gated metric is this factor worse")
    bench.set_defaults(fn=_cmd_bench)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
