"""Command line interface.

Subcommands::

    repro-spv generate  --nodes 800 --seed 7 --out net.txt
    repro-spv info      net.txt
    repro-spv workload  net.txt --range 2000 --count 10 --out queries.txt
    repro-spv demo      net.txt --method HYP --queries 3
    repro-spv estimate  net.txt --range 2000

``demo`` runs the full three-party protocol (build, answer, verify) and
prints per-query proof sizes; ``estimate`` prints the predictive sizing
model's ranking without building anything.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.reporting import format_table
from repro.core.estimate import ProofSizeModel
from repro.core.framework import Client, DataOwner, ServiceProvider
from repro.crypto.signer import NullSigner, RsaSigner
from repro.errors import ReproError
from repro.graph.io import read_graph, write_graph, write_workload
from repro.graph.synthetic import road_network
from repro.workload.datasets import normalize_weights
from repro.workload.queries import generate_workload


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = road_network(args.nodes, seed=args.seed, canvas=args.canvas)
    graph = normalize_weights(graph, args.diameter)
    write_graph(graph, args.out)
    print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to {args.out}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    graph = read_graph(args.graph)
    degrees = [graph.degree(n) for n in graph.node_ids()]
    min_x, min_y, max_x, max_y = graph.bounding_box()
    rows = [
        ["nodes", graph.num_nodes],
        ["edges", graph.num_edges],
        ["edge/node ratio", graph.num_edges / graph.num_nodes],
        ["mean degree", sum(degrees) / len(degrees)],
        ["max degree", max(degrees)],
        ["canvas", f"[{min_x:.0f},{max_x:.0f}] x [{min_y:.0f},{max_y:.0f}]"],
    ]
    print(format_table(["property", "value"], rows, title=args.graph))
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    graph = read_graph(args.graph)
    workload = generate_workload(graph, args.range, count=args.count,
                                 seed=args.seed, tolerance=1.0)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as out:
            write_workload(list(workload), out)
        print(f"wrote {len(workload)} queries to {args.out}")
    else:
        for vs, vt in workload:
            print(vs, vt)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    graph = read_graph(args.graph)
    signer = NullSigner() if args.insecure else RsaSigner(bits=1024)
    owner = DataOwner(graph, signer=signer)
    params = {}
    if args.method == "LDM":
        params = dict(c=args.landmarks)
    elif args.method == "HYP":
        params = dict(num_cells=args.cells)
    start = time.perf_counter()
    method = owner.publish(args.method, **params)
    build_seconds = time.perf_counter() - start
    provider = ServiceProvider(method)
    client = Client(signer.verify)
    workload = generate_workload(graph, args.range, count=args.queries,
                                 seed=args.seed, tolerance=1.0)
    rows = []
    failures = 0
    for vs, vt in workload:
        response = provider.answer(vs, vt)
        verdict = client.verify(vs, vt, response)
        if not verdict.ok:
            failures += 1
        sizes = response.sizes()
        rows.append([f"{vs}->{vt}", response.path_cost, len(response.path_nodes),
                     sizes.total_kbytes, "ok" if verdict.ok else verdict.reason])
    print(format_table(
        ["query", "distance", "path nodes", "proof KB", "verdict"], rows,
        title=(f"{args.method} on {args.graph} "
               f"(hints {method.construction_seconds:.2f}s, "
               f"build total {build_seconds:.2f}s)"),
    ))
    return 1 if failures else 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    graph = read_graph(args.graph)
    model = ProofSizeModel.for_graph(graph)
    rows = [
        [name, bytes_ / 1024]
        for name, bytes_ in model.rank(args.range)
    ]
    print(format_table(
        ["method", "predicted proof KB"], rows,
        title=f"predicted proof sizes at range {args.range:g} (smallest first)",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-spv",
        description="Authenticated shortest path verification (ICDE 2010 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic road network")
    gen.add_argument("--nodes", type=int, default=800)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--canvas", type=float, default=10_000.0)
    gen.add_argument("--diameter", type=float, default=9_000.0)
    gen.add_argument("--out", required=True)
    gen.set_defaults(fn=_cmd_generate)

    info = sub.add_parser("info", help="print statistics of a graph file")
    info.add_argument("graph")
    info.set_defaults(fn=_cmd_info)

    wl = sub.add_parser("workload", help="generate a query workload")
    wl.add_argument("graph")
    wl.add_argument("--range", type=float, default=2000.0)
    wl.add_argument("--count", type=int, default=10)
    wl.add_argument("--seed", type=int, default=0)
    wl.add_argument("--out")
    wl.set_defaults(fn=_cmd_workload)

    demo = sub.add_parser("demo", help="run the full three-party protocol")
    demo.add_argument("graph")
    demo.add_argument("--method", choices=["DIJ", "FULL", "LDM", "HYP"],
                      default="HYP")
    demo.add_argument("--range", type=float, default=2000.0)
    demo.add_argument("--queries", type=int, default=3)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--landmarks", type=int, default=50)
    demo.add_argument("--cells", type=int, default=49)
    demo.add_argument("--insecure", action="store_true",
                      help="use the keyed-hash stub signer (fast, no RSA)")
    demo.set_defaults(fn=_cmd_demo)

    est = sub.add_parser("estimate", help="predict proof sizes without building")
    est.add_argument("graph")
    est.add_argument("--range", type=float, default=2000.0)
    est.set_defaults(fn=_cmd_estimate)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
