"""Dynamic network demo: congestion updates without rebuilding the ADS.

Road conditions change: an accident doubles the travel time of a road
segment.  With DIJ the owner refreshes exactly two Merkle leaves and
re-signs the root (O(log n) hashes + one signature) — no rebuild.  The
demo shows:

1. the route before the incident;
2. the owner pushing a weight update;
3. the provider's new route avoiding the congested segment, with a
   proof that verifies against the *new* signed root;
4. a replay attack — serving the old (pre-incident) response under the
   new descriptor — being rejected.

Every method absorbs updates incrementally now (see
``examples/live_updates.py`` for the hint-bearing LDM against a running
proof server, including version-pinned freshness checks); DIJ remains
the cheapest case because its only ADS is the network Merkle tree.

Run:  python examples/dynamic_network.py
"""

import copy

from repro import Client, DataOwner, ServiceProvider
from repro.crypto.signer import RsaSigner
from repro.graph import road_network
from repro.workload import generate_workload
from repro.workload.datasets import normalize_weights


def main() -> None:
    graph = normalize_weights(road_network(900, seed=5), 9000.0)
    signer = RsaSigner(bits=1024, seed=3)
    owner = DataOwner(graph, signer=signer)
    method = owner.publish("DIJ")
    provider = ServiceProvider(method)
    client = Client(signer.verifier_for_public_key().verify)

    vs, vt = generate_workload(graph, 2500.0, count=1, seed=2).queries[0]
    before = provider.answer(vs, vt)
    assert client.verify(vs, vt, before).ok
    print(f"route {vs} -> {vt} before the incident: "
          f"{len(before.path_nodes)} segments, cost {before.path_cost:.1f}")

    # An accident on the second segment of the current best route.
    u, v = before.path_nodes[1], before.path_nodes[2]
    old_weight = graph.weight(u, v)
    print(f"\nincident on segment ({u}, {v}): "
          f"travel time {old_weight:.1f} -> {old_weight * 4:.1f}")
    method.update_edge_weight(u, v, old_weight * 4, signer)
    print("owner refreshed 2 Merkle leaves and re-signed the root "
          "(no rebuild)")

    after = provider.answer(vs, vt)
    verdict = client.verify(vs, vt, after)
    assert verdict.ok, verdict.reason
    print(f"\nroute after the incident: {len(after.path_nodes)} segments, "
          f"cost {after.path_cost:.1f}  [verified against the new root]")
    detour = after.path_cost - before.path_cost
    print(f"the verified detour costs +{detour:.1f}")

    # Replay attack: old tuples + new descriptor must fail.
    stale = copy.deepcopy(before)
    stale.descriptor = method.descriptor
    replay = client.verify(vs, vt, stale)
    print(f"\nreplaying the pre-incident response under the new root: "
          f"{'ACCEPTED (!)' if replay.ok else 'REJECTED [' + replay.reason + ']'}")
    assert not replay.ok


if __name__ == "__main__":
    main()
