"""Proof server: serve heavy repeated traffic from one built method.

A delivery dispatcher queries the same depot-to-customer routes all
morning.  Instead of re-proving every request, the provider runs a
:class:`~repro.service.server.ProofServer`:

1. the owner builds and signs a DIJ method once;
2. the server answers the first burst through the combined-cover batch
   path and fills its LRU proof cache;
3. repeat requests are replayed from the cache at memory speed — and
   still verify, because a cached proof is byte-identical to a fresh
   one;
4. serving metrics (QPS, latency percentiles, hit rate) quantify the
   difference.

Run:  python examples/proof_server.py
"""

from repro import Client, DataOwner, ProofServer
from repro.bench.reporting import format_table
from repro.graph import road_network
from repro.workload import generate_workload
from repro.workload.datasets import normalize_weights


def main() -> None:
    print("Owner: generating and signing a road network (DIJ) ...")
    graph = normalize_weights(road_network(800, seed=11), 9000.0)
    owner = DataOwner(graph)
    method = owner.publish("DIJ")
    print(f"  network: {graph.num_nodes} nodes, {graph.num_edges} edges")

    server = ProofServer(method, cache_size=256)
    client = Client(owner.signer.verifier_for_public_key().verify)
    dispatch = list(generate_workload(graph, 2000.0, count=12, seed=3))

    rows = []
    for label in ("cold", "warm", "warm"):
        server.reset_metrics()
        served = server.answer_many(dispatch)  # burst -> one Merkle cover
        s = server.snapshot()  # freeze before client-side verification
        rows.append([label, s.requests, s.qps, s.p50_ms, s.p95_ms,
                     100.0 * s.hit_rate, s.proof_kbytes])
        for (vs, vt), item in zip(dispatch, served):
            assert client.verify(vs, vt, item.response).ok

    print()
    print(format_table(
        ["pass", "requests", "QPS", "p50 ms", "p95 ms", "hit %", "proof KB"],
        rows, title="morning dispatch, replayed three times",
    ))
    stats = server.cache.stats
    print(f"\ncache: {stats.hits} hits / {stats.misses} misses "
          f"({100.0 * stats.hit_rate:.0f}% hit rate), "
          f"all responses verified by the client")


if __name__ == "__main__":
    main()
