"""Quickstart: outsource a road network, query it, verify the answer.

Walks the full three-party protocol of the paper on a small synthetic
road network:

1. the data owner builds authenticated hints (LDM) and signs them;
2. the service provider answers a shortest path query with a proof;
3. the client verifies the path using only the owner's public key.

Run:  python examples/quickstart.py
"""

from repro import Client, DataOwner, ServiceProvider
from repro.crypto.signer import RsaSigner
from repro.graph import road_network
from repro.workload import generate_workload
from repro.workload.datasets import normalize_weights


def main() -> None:
    # -- data owner -----------------------------------------------------
    print("Generating a synthetic road network ...")
    graph = normalize_weights(road_network(1200, seed=42), 9000.0)
    print(f"  network: {graph.num_nodes} nodes, {graph.num_edges} edges")

    print("Owner: generating RSA keys and building LDM hints ...")
    owner = DataOwner(graph, signer=RsaSigner(bits=1024, seed=7))
    method = owner.publish("LDM", c=60, bits=12, xi=50.0)
    print(f"  hint construction took {method.construction_seconds:.2f}s")

    # -- service provider -------------------------------------------------
    provider = ServiceProvider(method)

    # -- client -----------------------------------------------------------
    client = Client(owner.signer.verifier_for_public_key().verify)

    workload = generate_workload(graph, query_range=2500.0, count=3, seed=1)
    for vs, vt in workload:
        response = provider.answer(vs, vt)
        result = client.verify(vs, vt, response)
        sizes = response.sizes()
        print(
            f"\nquery ({vs} -> {vt}):"
            f"\n  path: {len(response.path_nodes)} nodes, "
            f"cost {response.path_cost:.1f}"
            f"\n  proof: {sizes.total_kbytes:.1f} KB "
            f"(S-prf {sizes.s_prf_bytes / 1024:.1f} KB, "
            f"T-prf {sizes.t_prf_bytes / 1024:.1f} KB)"
            f"\n  verdict: {'ACCEPTED' if result.ok else 'REJECTED: ' + result.reason}"
        )
        assert result.ok

    print("\nAll responses verified against the owner's public key.")


if __name__ == "__main__":
    main()
