"""Logistics scenario: verified routing for a delivery fleet.

The paper's motivating application: a logistics company outsources its
routing to a third-party map service but must be certain that the
returned routes are optimal — a provider quietly returning 5% longer
routes would cost real money every day.

The data owner (transport authority) publishes HYP hints (the method
the paper recommends for production); the company verifies every route
before dispatching a driver, and keeps an audit log of proof sizes and
verification latency.

Run:  python examples/logistics_routing.py
"""

import random
import statistics
import time

from repro import Client, DataOwner, ServiceProvider
from repro.crypto.signer import RsaSigner
from repro.graph import road_network
from repro.workload.datasets import normalize_weights


def main() -> None:
    print("City road network (transport authority data) ...")
    graph = normalize_weights(road_network(2000, seed=99), 9000.0)
    depot = min(
        graph.node_ids(),
        key=lambda n: (graph.node(n).x - 5000) ** 2 + (graph.node(n).y - 5000) ** 2,
    )
    print(f"  {graph.num_nodes} junctions, {graph.num_edges} road segments; "
          f"depot at node {depot}")

    owner = DataOwner(graph, signer=RsaSigner(bits=1024, seed=2024))
    t0 = time.perf_counter()
    method = owner.publish("HYP", num_cells=100)
    print(f"  authority published HYP hints in {time.perf_counter() - t0:.1f}s "
          f"({method._hyper.num_pairs:,} hyper-edges materialized)")

    provider = ServiceProvider(method)
    client = Client(owner.signer.verifier_for_public_key().verify)

    # A day's deliveries: 15 random drop-off points.
    rng = random.Random(7)
    ids = graph.node_ids()
    deliveries = rng.sample([n for n in ids if n != depot], 15)

    total_distance = 0.0
    proof_kb: list[float] = []
    verify_ms: list[float] = []
    print("\ndispatching deliveries:")
    for stop in deliveries:
        response = provider.answer(depot, stop)
        t0 = time.perf_counter()
        result = client.verify(depot, stop, response)
        verify_ms.append((time.perf_counter() - t0) * 1000)
        if not result.ok:
            raise SystemExit(
                f"route to {stop} failed verification: {result.reason} - "
                f"do not dispatch!"
            )
        total_distance += response.path_cost
        proof_kb.append(response.sizes().total_kbytes)
        print(f"  stop {stop:5d}: route of {len(response.path_nodes):3d} segments, "
              f"cost {response.path_cost:7.1f}  [verified]")

    print(
        f"\nfleet summary: {len(deliveries)} verified routes, "
        f"total distance {total_distance:,.0f}"
        f"\n  proof overhead: mean {statistics.fmean(proof_kb):.1f} KB / route"
        f"\n  verification latency: mean {statistics.fmean(verify_ms):.1f} ms, "
        f"max {max(verify_ms):.1f} ms"
    )


if __name__ == "__main__":
    main()
