"""Live updates: interleave owner re-weights with a running proof server.

Morning traffic builds up on a road network while a dispatcher keeps
querying routes.  Without the live-update pipeline every congestion
re-weight would force the owner to rebuild and re-sign everything from
scratch; with it:

1. the owner builds and signs an LDM method once;
2. a :class:`~repro.service.server.ProofServer` serves queries (with
   caching) while the owner pushes re-weights through
   :meth:`~repro.service.server.ProofServer.apply_updates` — each one
   patches only the touched hint tuples and Merkle leaves, then
   re-signs the root under a bumped version;
3. clients pin the owner's announced version, so a replay of a
   pre-update proof — authentic bytes, stale network — is rejected as
   ``stale-descriptor`` while fresh proofs verify;
4. the incremental cost is compared against the from-scratch rebuild
   the owner would otherwise run.

Run:  python examples/live_updates.py
"""

import time

from repro import Client, DataOwner, ProofServer
from repro.bench.reporting import format_table
from repro.core.adversary import replay_stale_root
from repro.graph import road_network
from repro.workload import generate_update_workload, generate_workload
from repro.workload.datasets import normalize_weights


def main() -> None:
    print("Owner: generating and signing a road network (LDM) ...")
    graph = normalize_weights(road_network(800, seed=11), 9000.0)
    owner = DataOwner(graph)
    method = owner.publish("LDM", c=32)
    print(f"  network: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"signed at version {method.descriptor.version}")

    server = ProofServer(method, cache_size=256)
    client = Client(owner.signer.verifier_for_public_key().verify,
                    min_descriptor_version=method.descriptor.version)
    dispatch = list(generate_workload(graph, 2000.0, count=8, seed=3))
    congestion = list(generate_update_workload(
        graph, 4, seed=7, kinds=("update-weight",)))

    print("\nServing queries with congestion re-weights interleaved ...")
    stale_proof = None
    rows = []
    for round_no, update in enumerate(congestion, start=1):
        for vs, vt in dispatch:
            served = server.answer(vs, vt)
            assert client.verify(vs, vt, served.response).ok
            if stale_proof is None:
                stale_proof = served.response

        start = time.perf_counter()
        report = server.apply_updates([update], owner.signer)
        # The owner announces the new version; clients raise their floor.
        client.require_version(server.descriptor_version)
        rows.append([
            round_no, f"{update.u}-{update.v}", report.mode,
            report.leaves_patched, (time.perf_counter() - start) * 1000.0,
            report.version,
        ])
    print(format_table(
        ["round", "edge", "mode", "leaves patched", "ms", "version"],
        rows, title="owner re-weights absorbed incrementally",
    ))

    print("\nFreshness: replaying a pre-update proof ...")
    replayed = replay_stale_root(stale_proof)
    verdict = client.verify(dispatch[0][0], dispatch[0][1], replayed)
    assert not verdict.ok and verdict.reason == "stale-descriptor"
    print(f"  client verdict: {verdict.reason} (signed at version "
          f"{replayed.descriptor.version}, floor is "
          f"{client.min_descriptor_version})")
    fresh = server.answer(*dispatch[0])
    assert client.verify(dispatch[0][0], dispatch[0][1], fresh.response).ok
    print("  fresh proof under the new version verifies")

    print("\nIncremental update vs from-scratch rebuild ...")
    update = generate_update_workload(graph, 1, seed=99,
                                      kinds=("update-weight",)).updates[0]
    update.apply(graph)
    start = time.perf_counter()
    method.apply_update(owner.signer)
    incremental = time.perf_counter() - start
    start = time.perf_counter()
    owner.publish("LDM", c=32)
    rebuild = time.perf_counter() - start
    print(f"  incremental apply_update: {incremental * 1000:.1f} ms")
    print(f"  full rebuild + re-sign:   {rebuild * 1000:.1f} ms "
          f"({rebuild / incremental:.1f}x slower)")


if __name__ == "__main__":
    main()
