"""Method trade-off explorer: which hints should an owner publish?

Reproduces the paper's central trade-off (Fig. 8) on a dataset of your
choice: DIJ needs no pre-computation but ships enormous proofs; FULL
ships tiny proofs but cannot scale its pre-computation; LDM and HYP sit
in between.  Useful as a sizing tool before deploying.

Run:  python examples/method_tradeoffs.py [dataset] [scale] [range]
e.g.  python examples/method_tradeoffs.py DE 0.0625 2000
"""

import sys

from repro.bench import format_table, run_workload
from repro.core.method import get_method
from repro.crypto.signer import NullSigner
from repro.workload import generate_workload, load_dataset


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "DE"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1 / 16
    query_range = float(sys.argv[3]) if len(sys.argv) > 3 else 2000.0

    graph = load_dataset(dataset, scale=scale)
    print(f"{dataset}-like at scale {scale:g}: {graph.num_nodes} nodes, "
          f"{graph.num_edges} edges; query range {query_range:g}\n")
    signer = NullSigner()
    workload = generate_workload(graph, query_range, count=10, seed=1,
                                 tolerance=1.0)

    rows = []
    for name, params in [
        ("DIJ", {}),
        ("FULL", {}),
        ("LDM", dict(c=100, bits=12, xi=50.0)),
        ("HYP", dict(num_cells=100)),
    ]:
        method = get_method(name).build(graph, signer, **params)
        run = run_workload(method, workload, signer.verify)
        rows.append([
            name,
            run.construction_seconds,
            run.total_kb,
            round(run.s_items),
            run.prove_ms,
            run.verify_ms,
        ])

    print(format_table(
        ["method", "hints build s", "proof KB", "S-items",
         "prove ms", "verify ms"],
        rows,
        title="Trade-offs (mean per query over the workload)",
    ))
    print(
        "\nReading guide: pick FULL for tiny static networks, HYP for "
        "typical deployments,\nLDM when grid partitioning fits the data "
        "poorly, DIJ only when the owner cannot\npre-compute anything."
    )


if __name__ == "__main__":
    main()
