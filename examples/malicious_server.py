"""Malicious provider demo: every attack from the paper's threat model.

A compromised or profit-motivated service provider tries five ways to
cheat; the client rejects each one, and the output shows *which* check
caught it — hash verification, signature verification, or the shortest
path validity re-search that is the paper's core contribution.

Run:  python examples/malicious_server.py
"""

from repro import Client, DataOwner
from repro.core import adversary
from repro.crypto.signer import NullSigner
from repro.errors import MethodError
from repro.graph import road_network
from repro.workload import generate_workload
from repro.workload.datasets import normalize_weights

ATTACK_DESCRIPTIONS = {
    "suboptimal": "report a longer path (e.g. past preferred gas stations)",
    "tamper": "rewrite an edge weight inside a disclosed tuple",
    "drop": "withhold evidence tuples, patch the Merkle proof (§IV-A)",
    "forge-distance": "rewrite a materialized distance value",
    "strip-signature": "replace the owner's signature",
    "inflate-cost": "claim the path is longer than it is",
}


def attacks_for(method, graph, vs, vt, honest):
    yield "suboptimal", lambda: adversary.suboptimal_path(method, graph, vs, vt)
    yield "tamper", lambda: adversary.tamper_weight(honest)
    if method.name in ("DIJ", "LDM", "HYP"):
        yield "drop", lambda: adversary.drop_tuple(honest)
    if method.name in ("FULL", "HYP"):
        yield "forge-distance", lambda: adversary.forge_distance(honest)
    yield "strip-signature", lambda: adversary.strip_signature(honest)
    yield "inflate-cost", lambda: adversary.inflate_cost(honest)


def main() -> None:
    graph = normalize_weights(road_network(700, seed=11), 9000.0)
    owner = DataOwner(graph, signer=NullSigner())
    client = Client(owner.signer.verify)
    vs, vt = generate_workload(graph, 2500.0, count=1, seed=5).queries[0]
    print(f"network: {graph.num_nodes} nodes; query: {vs} -> {vt}\n")

    accepted_attacks = 0
    for name in ("DIJ", "FULL", "LDM", "HYP"):
        method = owner.publish(
            name, **({"c": 24} if name == "LDM" else
                     {"num_cells": 25} if name == "HYP" else {})
        )
        honest = method.answer(vs, vt)
        assert client.verify(vs, vt, honest).ok
        print(f"== {name}: honest response accepted "
              f"({honest.sizes().total_kbytes:.1f} KB proof)")
        for attack, make in attacks_for(method, graph, vs, vt, honest):
            try:
                tampered = make()
            except MethodError as exc:
                print(f"   {attack:16s} -> not applicable ({exc})")
                continue
            result = client.verify(vs, vt, tampered)
            verdict = "REJECTED" if not result.ok else "ACCEPTED (!)"
            if result.ok:
                accepted_attacks += 1
            print(f"   {attack:16s} -> {verdict:12s} [{result.reason}] "
                  f"- {ATTACK_DESCRIPTIONS[attack]}")
        print()

    if accepted_attacks:
        raise SystemExit(f"{accepted_attacks} attacks were wrongly accepted!")
    print("Every attack was rejected; honest answers were accepted.")


if __name__ == "__main__":
    main()
