"""Remote verification: the three-party model over a real wire.

The paper's client holds nothing but the owner's public key — so here
the roles actually separate: an HTTP proof service runs the provider
side, and a :class:`RemoteClient` on the other end of a localhost
socket fetches the signed descriptor and proofs as *bytes* and verifies
them against the key alone.

1. the owner builds and signs an LDM method and starts the service;
2. the client handshakes (protocol version, served method), pulls the
   descriptor, and runs verified queries over the wire — every payload
   byte-identical to what an in-process provider would emit;
3. the owner pushes a live re-weight through the wire API; the served
   descriptor version bumps mid-traffic and the client raises its
   freshness floor, after which replaying a pre-update response is
   rejected as `stale-descriptor`;
4. wire accounting shows what the protocol adds on top of the proof
   bytes the paper reports (about one percent).

Run:  python examples/remote_client.py
"""

from repro import DataOwner, ProofServer, RemoteClient
from repro.api.transport import HttpTransport
from repro.bench.reporting import format_table
from repro.graph import road_network
from repro.service.http import ProofHttpServer
from repro.workload import generate_workload
from repro.workload.datasets import normalize_weights
from repro.workload.updates import UPDATE_WEIGHT, generate_update_workload


def main() -> None:
    print("Owner: building and signing an LDM method ...")
    graph = normalize_weights(road_network(600, seed=23), 9000.0)
    owner = DataOwner(graph)
    method = owner.publish("LDM", c=30)
    print(f"  network: {graph.num_nodes} nodes, {graph.num_edges} edges")

    server = ProofServer(method, cache_size=256)
    dispatcher = server.dispatcher(update_signer=owner.signer)

    with ProofHttpServer(dispatcher) as http_server:
        print(f"Provider: serving frames on {http_server.url}/rpc")
        client = RemoteClient(
            HttpTransport(http_server.url),
            owner.signer.verifier_for_public_key().verify,
        )

        hello = client.hello()
        descriptor, raw = client.fetch_descriptor()
        print(f"Client: protocol v{hello.version}, method {hello.method}, "
              f"descriptor version {descriptor.version} "
              f"({len(raw)} bytes, signature checks out)\n")

        queries = list(generate_workload(graph, 2500.0, count=5, seed=8))
        rows = []
        for vs, vt in queries:
            result = client.query(vs, vt)
            assert result.ok, result.verdict
            rows.append([
                f"{vs}->{vt}",
                result.response.path_cost,
                len(result.response_bytes) / 1024,
                result.wire_bytes / 1024,
                "ok",
            ])
        print(format_table(
            ["query", "distance", "proof KB", "wire KB", "verdict"], rows,
            title="verified over HTTP",
        ))

        # -- a live update crosses the same wire -----------------------
        vs, vt = queries[0]
        stale_bytes = client.query(vs, vt).response_bytes
        update = list(generate_update_workload(
            graph, 1, seed=99, kinds=(UPDATE_WEIGHT,)))[0]
        report = client.push_updates([update])
        client.require_version(report.version)
        print(f"\nOwner: pushed a re-weight over the wire -> "
              f"{report.mode} update, descriptor version {report.version}")

        stale = client.client.verify_bytes(vs, vt, stale_bytes)
        fresh = client.query(vs, vt)
        assert not stale.ok and stale.reason == "stale-descriptor"
        assert fresh.ok
        print(f"Client: pre-update replay rejected ({stale.reason}); "
              f"fresh wire query verifies at version "
              f"{fresh.response.descriptor.version}")

        metrics = client.metrics()
        print(f"\nServer metrics over the wire: {metrics.requests} requests, "
              f"{metrics.proof_bytes / 1024:.1f} proof KB served")


if __name__ == "__main__":
    main()
