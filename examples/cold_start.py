"""Cold start: build once on the signer box, serve anywhere from a file.

The paper's owner constructs and signs the authenticated structures
**once, offline**.  This example makes that lifecycle literal with the
``.rspv`` artifact format:

1. the *signer box* builds an LDM method and packs it with
   :func:`repro.store.save_method` — the only step that ever touches
   the private key;
2. a *serving box* cold-starts with :func:`repro.store.load_method`:
   no graph file, no signer, the big numeric sections mapped
   copy-on-write straight off the artifact — and answers
   byte-identically to the box that built it;
3. a client verifies responses against nothing but the owner's public
   key, exactly as it would against the original;
4. when the owner re-weights an edge, the serving box absorbs the
   pushed update incrementally and the owner re-packs the next
   artifact version.

Run:  python examples/cold_start.py
"""

import os
import tempfile
import time

from repro import Client, DataOwner, ProofServer, load_method, save_method
from repro.graph import road_network
from repro.store import artifact_info
from repro.workload import generate_workload
from repro.workload.datasets import normalize_weights


def main() -> None:
    print("Signer box: building and signing an LDM method ...")
    graph = normalize_weights(road_network(800, seed=11), 9000.0)
    owner = DataOwner(graph)
    start = time.perf_counter()
    method = owner.publish("LDM", c=32)
    build_seconds = time.perf_counter() - start

    artifact = os.path.join(tempfile.mkdtemp(prefix="repro-"), "net.ldm.rspv")
    save_method(method, artifact)
    info = artifact_info(artifact, verify=False)
    print(f"  packed {info.method} into {artifact}")
    print(f"  {len(info.sections)} sections, {info.total_bytes / 1024:.0f} KB, "
          f"descriptor version {info.descriptor_version}")
    print(f"  content digest {info.content_digest.hex()[:32]}…")

    print("\nServing box: cold-starting from the artifact "
          "(no graph file, no signer) ...")
    start = time.perf_counter()
    served_method = load_method(artifact)
    load_seconds = time.perf_counter() - start
    print(f"  build took {build_seconds * 1000:.0f} ms, "
          f"cold start {load_seconds * 1000:.0f} ms "
          f"({build_seconds / load_seconds:.0f}x faster)")

    server = ProofServer(served_method)
    client = Client(owner.signer.verifier_for_public_key().verify)
    queries = list(generate_workload(graph, 2000.0, count=5, seed=3))
    for vs, vt in queries:
        served = server.answer(vs, vt)
        assert served.ok
        # Byte-identical to the builder's answer — same proof, same bytes.
        assert served.response.encode() == method.answer(vs, vt).encode()
        assert client.verify(vs, vt, served.response).ok
    print(f"  {len(queries)} queries answered byte-identically and verified")

    print("\nOwner pushes a re-weight; the serving box absorbs it "
          "incrementally ...")
    u, v, w = next(iter(served_method.graph.edges()))
    report = server.update_edge_weight(u, v, w * 1.5, owner.signer)
    print(f"  {report.mode}: {report.leaves_patched} leaves patched, "
          f"descriptor now version {report.version}")
    vs, vt = queries[0]
    assert client.verify(vs, vt, server.answer(vs, vt).response).ok

    next_artifact = artifact.replace(".rspv", f".v{report.version}.rspv")
    save_method(served_method, next_artifact)
    print(f"  re-packed as {os.path.basename(next_artifact)} — the next "
          f"version to fan out to the other serving boxes")
    print("\nOK")


if __name__ == "__main__":
    main()
